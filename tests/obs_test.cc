// Telemetry subsystem tests: sharded counter/histogram correctness under
// concurrent writers (the merge-at-scrape contract), histogram bucket and
// quantile math, Prometheus rendering, the kill switch's zero-registration
// guarantee, and the tracer's deterministic span-tree shape.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wgrap::obs {
namespace {

TEST(ObsCounterTest, ConcurrentAddsMergeExactly) {
  Registry registry(/*enabled=*/true);
  Counter* counter = registry.GetCounter("c");
  ASSERT_NE(counter, nullptr);
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter->Add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Relaxed per-shard adds merged at read time must still be exact — no
  // update may be lost to a torn or overwritten cell.
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kAddsPerThread);
}

TEST(ObsHistogramTest, ConcurrentObservationsMergeExactly) {
  Registry registry(/*enabled=*/true);
  Histogram* histogram = registry.GetHistogram("h", {1.0, 2.0, 4.0});
  ASSERT_NE(histogram, nullptr);
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram, t] {
      for (int i = 0; i < kObsPerThread; ++i) {
        histogram->Observe(0.5 * (t % 4));  // 0, 0.5, 1, 1.5 across threads
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram->Count(), int64_t{kThreads} * kObsPerThread);
  const std::vector<int64_t> buckets = histogram->BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 finite + the +Inf catch-all
  // 0, 0.5 and 1 land in le=1 (inclusive upper edge); 1.5 in le=2.
  EXPECT_EQ(buckets[0], int64_t{6} * kObsPerThread);
  EXPECT_EQ(buckets[1], int64_t{2} * kObsPerThread);
  EXPECT_EQ(buckets[2], 0);
  EXPECT_EQ(buckets[3], 0);
  // Sum is nanounit-exact: each of the four values observed by two
  // threads, 2×(0+0.5+1+1.5)×5000 = 30000.
  EXPECT_DOUBLE_EQ(histogram->Sum(), 30000.0);
}

TEST(ObsHistogramTest, QuantileInterpolatesWithinBuckets) {
  Histogram histogram({1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) histogram.Observe(0.5);   // bucket (0, 1]
  for (int i = 0; i < 100; ++i) histogram.Observe(1.5);   // bucket (1, 2]
  EXPECT_EQ(histogram.Count(), 200);
  // p25 falls midway through the first bucket, p75 midway through the
  // second; the estimate must stay inside each bucket's edges.
  EXPECT_GT(histogram.Quantile(0.25), 0.0);
  EXPECT_LE(histogram.Quantile(0.25), 1.0);
  EXPECT_GT(histogram.Quantile(0.75), 1.0);
  EXPECT_LE(histogram.Quantile(0.75), 2.0);
  // Everything in the +Inf bucket reports the largest finite bound.
  Histogram overflow({1.0});
  overflow.Observe(100.0);
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.5), 1.0);
}

TEST(ObsRegistryTest, HandlesAreStableAndRenderSorted) {
  Registry registry(/*enabled=*/true);
  Counter* first = registry.GetCounter("zeta");
  Counter* again = registry.GetCounter("zeta");
  EXPECT_EQ(first, again);
  registry.GetGauge("alpha")->Set(7);
  first->Add(3);
  const std::string page = registry.RenderPrometheus();
  // Sorted by name: alpha before zeta.
  EXPECT_LT(page.find("alpha"), page.find("zeta"));
  EXPECT_NE(page.find("alpha 7"), std::string::npos);
  EXPECT_NE(page.find("zeta 3"), std::string::npos);
}

TEST(ObsRegistryTest, DisabledRegistryRegistersNothing) {
  Registry registry(/*enabled=*/false);
  // The kill switch contract: every lookup is a nullptr (call sites branch
  // away), nothing is allocated, and the scrape page stays empty.
  EXPECT_EQ(registry.GetCounter("c"), nullptr);
  EXPECT_EQ(registry.GetGauge("g"), nullptr);
  EXPECT_EQ(registry.GetHistogram("h"), nullptr);
  EXPECT_TRUE(registry.Names().empty());
  EXPECT_TRUE(registry.RenderPrometheus().empty());
}

// The span tree's *shape* (names, parents, depths, order) is a pure
// function of the code path — only durations vary run to run. Two
// identical traversals must produce identical shapes.
std::vector<std::string> ShapeOf(const Tracer& tracer) {
  std::vector<std::string> shape;
  for (const SpanRecord& span : tracer.spans()) {
    shape.push_back(span.name + "/" + std::to_string(span.parent) + "/" +
                    std::to_string(span.depth));
  }
  return shape;
}

void FakeSolve() {
  ScopedSpan solve("solve");
  for (int stage = 0; stage < 3; ++stage) {
    ScopedSpan inner("stage");
  }
}

TEST(ObsTraceTest, SpanTreeShapeIsDeterministic) {
  Tracer first;
  {
    ScopedTracerAttach attach(&first);
    FakeSolve();
  }
  Tracer second;
  {
    ScopedTracerAttach attach(&second);
    FakeSolve();
  }
  ASSERT_EQ(first.spans().size(), 4u);  // solve + 3 stages, DFS preorder
  EXPECT_EQ(first.spans()[0].name, "solve");
  EXPECT_EQ(first.spans()[0].parent, -1);
  EXPECT_EQ(first.spans()[0].depth, 0);
  EXPECT_EQ(first.spans()[1].name, "stage");
  EXPECT_EQ(first.spans()[1].parent, 0);
  EXPECT_EQ(first.spans()[1].depth, 1);
  EXPECT_EQ(ShapeOf(first), ShapeOf(second));
  for (const SpanRecord& span : first.spans()) {
    EXPECT_GE(span.duration_ns, 0);
  }
}

TEST(ObsTraceTest, SpansAreNoOpsWithoutAnAmbientTracer) {
  // Worker threads never attach a tracer; their spans must vanish without
  // touching anyone else's tree.
  EXPECT_EQ(AmbientTracer(), nullptr);
  { ScopedSpan orphan("orphan"); }
  Tracer tracer;
  {
    ScopedTracerAttach attach(&tracer);
    std::thread worker([] {
      EXPECT_EQ(AmbientTracer(), nullptr);  // thread_local, not inherited
      ScopedSpan span("worker");
    });
    worker.join();
    ScopedSpan span("main");
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].name, "main");
}

TEST(ObsTraceTest, ChromeJsonIsWellFormed) {
  Tracer tracer;
  {
    ScopedTracerAttach attach(&tracer);
    FakeSolve();
  }
  const std::string json = TraceToChromeJson(tracer);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  EXPECT_NE(json.find("\"name\":\"solve\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

}  // namespace
}  // namespace wgrap::obs
