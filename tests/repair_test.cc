// Swap-repair completion tests: direct fills, one-step swaps under
// exactly-tight capacity, COI interaction, and genuine infeasibility.
#include <gtest/gtest.h>

#include "core/cra.h"
#include "core/repair.h"
#include "data/synthetic_dblp.h"

namespace wgrap::core {
namespace {

Instance TightInstance(int reviewers, int papers, int group_size,
                       uint64_t seed) {
  data::SyntheticDblpConfig config;
  config.num_topics = 6;
  config.seed = seed;
  auto dataset = data::GenerateReviewerPool(reviewers, papers, config);
  EXPECT_TRUE(dataset.ok());
  InstanceParams params;
  params.group_size = group_size;  // δr defaults to the minimal workload
  auto instance = Instance::FromDataset(*dataset, params);
  EXPECT_TRUE(instance.ok());
  return std::move(instance).value();
}

TEST(RepairTest, FillsEmptyAssignmentDirectly) {
  Instance instance = TightInstance(6, 4, 2, 1);
  Assignment assignment(&instance);
  ASSERT_TRUE(CompleteWithSwapRepair(instance, &assignment).ok());
  EXPECT_TRUE(assignment.ValidateComplete().ok());
}

TEST(RepairTest, CompletesPartialAssignment) {
  Instance instance = TightInstance(8, 6, 3, 2);
  Assignment assignment(&instance);
  // Pre-fill half the slots arbitrarily but feasibly.
  for (int p = 0; p < 3; ++p) {
    for (int r = 0; r < 3; ++r) ASSERT_TRUE(assignment.Add(p, r).ok());
  }
  ASSERT_TRUE(CompleteWithSwapRepair(instance, &assignment).ok());
  EXPECT_TRUE(assignment.ValidateComplete().ok());
}

TEST(RepairTest, SwapResolvesStrandedPaper) {
  // 3 reviewers, 3 papers, δp = 2, δr = 2 (exactly tight). Strand paper 2
  // by pre-assigning so its only spare reviewers are already in its group.
  data::RapDataset dataset;
  dataset.num_topics = 2;
  for (int r = 0; r < 3; ++r) {
    dataset.reviewers.push_back({"r", {0.5, 0.5}, 1});
  }
  for (int p = 0; p < 3; ++p) {
    dataset.papers.push_back({"p", {0.5, 0.5}, "V"});
  }
  InstanceParams params;
  params.group_size = 2;
  params.reviewer_workload = 2;
  auto instance = Instance::FromDataset(dataset, params);
  ASSERT_TRUE(instance.ok());
  Assignment assignment(&*instance);
  // p0 = {r0, r1}, p1 = {r0, r1}: r0, r1 exhausted; p2 can only draw r2
  // directly and needs a swap for its second slot.
  ASSERT_TRUE(assignment.Add(0, 0).ok());
  ASSERT_TRUE(assignment.Add(0, 1).ok());
  ASSERT_TRUE(assignment.Add(1, 0).ok());
  ASSERT_TRUE(assignment.Add(1, 1).ok());
  ASSERT_TRUE(CompleteWithSwapRepair(*instance, &assignment).ok());
  EXPECT_TRUE(assignment.ValidateComplete().ok());
}

TEST(RepairTest, RespectsConflicts) {
  Instance instance = TightInstance(6, 4, 2, 3);
  instance.AddConflict(0, 0);
  instance.AddConflict(1, 0);
  Assignment assignment(&instance);
  ASSERT_TRUE(CompleteWithSwapRepair(instance, &assignment).ok());
  EXPECT_TRUE(assignment.ValidateComplete().ok());
  for (int r : assignment.GroupFor(0)) {
    EXPECT_FALSE(instance.IsConflict(r, 0));
  }
}

TEST(RepairTest, InfeasibleWhenConflictsBlockEverything) {
  // Paper 0 conflicts with everyone: no repair possible.
  Instance instance = TightInstance(4, 2, 2, 4);
  for (int r = 0; r < 4; ++r) instance.AddConflict(r, 0);
  Assignment assignment(&instance);
  EXPECT_EQ(CompleteWithSwapRepair(instance, &assignment).code(),
            StatusCode::kInfeasible);
}

TEST(RepairTest, SkipsReviewerWithZeroRemainingCapacity) {
  // 4 reviewers × δr=2 slots exactly cover 4 papers × δp=2. Exhaust r0 on
  // papers 0 and 1 before repair: the fill must route every remaining slot
  // around the zero-remaining-capacity reviewer and still complete.
  data::RapDataset dataset;
  dataset.num_topics = 2;
  for (int r = 0; r < 4; ++r) {
    dataset.reviewers.push_back({"r", {0.6, 0.4}, 1});
  }
  for (int p = 0; p < 4; ++p) {
    dataset.papers.push_back({"p", {0.5, 0.5}, "V"});
  }
  InstanceParams params;
  params.group_size = 2;
  params.reviewer_workload = 2;
  auto instance = Instance::FromDataset(dataset, params);
  ASSERT_TRUE(instance.ok());
  Assignment assignment(&*instance);
  ASSERT_TRUE(assignment.Add(0, 0).ok());
  ASSERT_TRUE(assignment.Add(1, 0).ok());
  ASSERT_EQ(assignment.LoadOf(0), instance->reviewer_workload());
  ASSERT_TRUE(CompleteWithSwapRepair(*instance, &assignment).ok());
  EXPECT_TRUE(assignment.ValidateComplete().ok());
  EXPECT_EQ(assignment.LoadOf(0), 2);  // untouched, not overloaded
}

TEST(RepairTest, InfeasibleAllCoiPaperLeavesPartialIntact) {
  // An all-COI paper discovered mid-stream (the online-update scenario):
  // repair on an otherwise healthy partial assignment must fail cleanly
  // with kInfeasible — no crash, and the pre-existing pairs survive.
  Instance instance = TightInstance(6, 4, 2, 6);
  for (int r = 0; r < 6; ++r) instance.AddConflict(r, 2);
  Assignment assignment(&instance);
  ASSERT_TRUE(assignment.Add(0, 0).ok());
  ASSERT_TRUE(assignment.Add(0, 1).ok());
  ASSERT_TRUE(assignment.Add(1, 2).ok());
  EXPECT_EQ(CompleteWithSwapRepair(instance, &assignment).code(),
            StatusCode::kInfeasible);
  EXPECT_TRUE(assignment.Contains(0, 0));
  EXPECT_TRUE(assignment.Contains(0, 1));
  EXPECT_TRUE(assignment.Contains(1, 2));
  EXPECT_TRUE(assignment.GroupFor(2).empty());
}

TEST(RepairTest, NoOpOnCompleteAssignment) {
  Instance instance = TightInstance(8, 5, 2, 5);
  auto sdga = SolveCraSdga(instance);
  ASSERT_TRUE(sdga.ok());
  Assignment assignment = *sdga;
  const double score = assignment.TotalScore();
  ASSERT_TRUE(CompleteWithSwapRepair(instance, &assignment).ok());
  EXPECT_DOUBLE_EQ(assignment.TotalScore(), score);
}

// Exactly-tight capacity sweeps: all construction heuristics must complete
// (these configurations historically stranded SM/BRGG/Greedy).
class TightCapacityTest : public ::testing::TestWithParam<int> {};

TEST_P(TightCapacityTest, AllConstructorsComplete) {
  const uint64_t seed = 200 + GetParam();
  // R·δr == P·δp exactly when P·δp divides R.
  Instance instance = TightInstance(10, 10, 3, seed);  // δr = 3, tight
  for (auto solve : {SolveCraStableMatching, SolveCraGreedy, SolveCraBrgg}) {
    auto assignment = solve(instance, {});
    ASSERT_TRUE(assignment.ok()) << assignment.status().ToString();
    EXPECT_TRUE(assignment->ValidateComplete().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TightCapacityTest, ::testing::Range(0, 8));

// The conference-scale SDGA cap-relaxation regression lives in
// repair_stress_test.cc (ctest label "slow") so sanitizer CI jobs can skip
// it — it dominated this suite at ~1.7 s vs milliseconds for the rest.

}  // namespace
}  // namespace wgrap::core
