// Reproducibility and COI-agreement checks that cut across solvers:
// seeded SRA determinism, seed sensitivity, thread-count invariance of the
// parallel solvers and samplers, ILP/CP honouring conflicts, and JRA
// solver agreement in the presence of conflicts.
#include <gtest/gtest.h>

#include "core/cra.h"
#include "core/jra.h"
#include "core/registry.h"
#include "data/synthetic_dblp.h"
#include "topic/atm.h"
#include "topic/synthetic.h"

namespace wgrap::core {
namespace {

Instance PoolInstance(int reviewers, int papers, int group_size,
                      uint64_t seed) {
  data::SyntheticDblpConfig config;
  config.num_topics = 8;
  config.seed = seed;
  auto dataset = data::GenerateReviewerPool(reviewers, papers, config);
  EXPECT_TRUE(dataset.ok());
  InstanceParams params;
  params.group_size = group_size;
  params.reviewer_workload = papers >= 1 ? 0 : 1;
  auto instance = Instance::FromDataset(*dataset, params);
  EXPECT_TRUE(instance.ok());
  return std::move(instance).value();
}

TEST(DeterminismTest, SraSameSeedSameResult) {
  Instance instance = PoolInstance(10, 8, 3, 301);
  auto sdga = SolveCraSdga(instance);
  ASSERT_TRUE(sdga.ok());
  SraOptions options;
  options.max_iterations = 15;
  options.seed = 99;
  auto a = RefineSra(instance, *sdga, options);
  auto b = RefineSra(instance, *sdga, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->TotalScore(), b->TotalScore());
  for (int p = 0; p < instance.num_papers(); ++p) {
    EXPECT_EQ(a->GroupFor(p), b->GroupFor(p)) << "paper " << p;
  }
}

TEST(DeterminismTest, LocalSearchSameSeedSameResult) {
  Instance instance = PoolInstance(10, 8, 3, 302);
  auto sdga = SolveCraSdga(instance);
  ASSERT_TRUE(sdga.ok());
  LocalSearchOptions options;
  options.max_stall_proposals = 500;
  options.seed = 7;
  auto a = RefineLocalSearch(instance, *sdga, options);
  auto b = RefineLocalSearch(instance, *sdga, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->TotalScore(), b->TotalScore());
}

TEST(DeterminismTest, DatasetGenerationIsPure) {
  // Generating a second dataset must not perturb the first (no hidden
  // global RNG state).
  data::SyntheticDblpConfig config;
  config.seed = 5;
  auto first = data::GenerateReviewerPool(8, 4, config);
  auto unrelated = data::GenerateReviewerPool(20, 9, config);
  auto second = data::GenerateReviewerPool(8, 4, config);
  ASSERT_TRUE(first.ok() && unrelated.ok() && second.ok());
  for (int r = 0; r < 8; ++r) {
    for (int t = 0; t < first->num_topics; ++t) {
      ASSERT_DOUBLE_EQ(first->reviewers[r].topics[t],
                       second->reviewers[r].topics[t]);
    }
  }
}

// The load-bearing guarantee of the ThreadPool substrate: for a fixed
// seed, solver output is bit-identical at threads=1 and threads=8 —
// parallel work is keyed by item index and reduced in index order, never
// by arrival.
TEST(DeterminismTest, SolversAreThreadCountInvariant) {
  Instance instance = PoolInstance(14, 10, 3, 305);
  const auto& registry = SolverRegistry::Default();
  for (const char* algo : {"sdga", "sdga-sra", "sdga-ls", "brgg"}) {
    SCOPED_TRACE(algo);
    SolverRunOptions one;
    one.seed = 77;
    one.extra["threads"] = "1";
    SolverRunOptions eight = one;
    eight.extra["threads"] = "8";
    auto a = registry.SolveCra(algo, instance, one);
    auto b = registry.SolveCra(algo, instance, eight);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->TotalScore(), b->TotalScore());
    for (int p = 0; p < instance.num_papers(); ++p) {
      EXPECT_EQ(a->GroupFor(p), b->GroupFor(p)) << "paper " << p;
    }
  }
}

// The sparse-topics contract (src/sparse/): `topics=sparse` on an instance
// carrying CSR views is bit-identical to the dense path — same scores,
// same groups — for every solver in the parallel line-up, at any thread
// count. This is the test the CI smoke diff (`--topics dense` vs
// `--topics sparse`) mirrors at the CLI layer.
TEST(DeterminismTest, SparseTopicsAreBitIdenticalToDense) {
  data::SyntheticDblpConfig config;
  config.num_topics = 8;
  config.seed = 306;
  auto dataset = data::GenerateReviewerPool(14, 10, config);
  ASSERT_TRUE(dataset.ok());
  InstanceParams params;
  params.group_size = 3;
  auto dense = Instance::FromDataset(*dataset, params);
  ASSERT_TRUE(dense.ok());
  dense->DropSparseTopics();  // genuinely dense even under forced-sparse CI
  params.sparse_topics = true;
  auto sparse_twin = Instance::FromDataset(*dataset, params);
  ASSERT_TRUE(sparse_twin.ok());
  ASSERT_TRUE(sparse_twin->has_sparse_topics());

  const auto& registry = SolverRegistry::Default();
  for (const char* algo : {"sdga", "sdga-sra", "sdga-ls", "brgg"}) {
    for (const char* threads : {"1", "8"}) {
      SCOPED_TRACE(std::string(algo) + " threads=" + threads);
      SolverRunOptions dense_options;
      dense_options.seed = 77;
      dense_options.extra["threads"] = threads;
      SolverRunOptions sparse_options = dense_options;
      sparse_options.extra["topics"] = "sparse";
      auto a = registry.SolveCra(algo, *dense, dense_options);
      auto b = registry.SolveCra(algo, *sparse_twin, sparse_options);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_EQ(a->TotalScore(), b->TotalScore());
      for (int p = 0; p < dense->num_papers(); ++p) {
        EXPECT_EQ(a->GroupFor(p), b->GroupFor(p)) << "paper " << p;
      }
    }
  }
}

TEST(DeterminismTest, AtmFitIsThreadCountInvariant) {
  topic::SyntheticCorpusConfig config;
  config.num_topics = 5;
  config.vocab_size = 60;
  config.num_authors = 10;
  config.num_documents = 24;
  auto fit = [&](int threads) {
    Rng rng(11);
    auto generated = topic::GenerateSyntheticCorpus(config, &rng);
    EXPECT_TRUE(generated.ok());
    topic::AtmOptions options;
    options.num_topics = config.num_topics;
    options.iterations = 12;
    options.burn_in = 6;
    options.num_threads = threads;
    auto model = topic::FitAtm(generated->corpus, options, &rng);
    EXPECT_TRUE(model.ok());
    return std::move(model).value();
  };
  const topic::AtmModel one = fit(1);
  const topic::AtmModel eight = fit(8);
  ASSERT_EQ(one.theta.rows(), eight.theta.rows());
  for (int a = 0; a < one.theta.rows(); ++a) {
    for (int t = 0; t < one.theta.cols(); ++t) {
      ASSERT_EQ(one.theta(a, t), eight.theta(a, t)) << a << "," << t;
    }
  }
  for (int t = 0; t < one.phi.rows(); ++t) {
    for (int w = 0; w < one.phi.cols(); ++w) {
      ASSERT_EQ(one.phi(t, w), eight.phi(t, w)) << t << "," << w;
    }
  }
}

TEST(DeterminismTest, AtmHandlesDuplicateAuthorListings) {
  // A document may list the same author twice (double weight in the
  // generative story); local count deltas are keyed by author, not slot,
  // so the excluded token must not leak back in through the duplicate.
  topic::Corpus corpus;
  corpus.vocab_size = 8;
  corpus.num_authors = 3;
  corpus.documents.push_back({{0, 1, 2, 3, 1, 0}, {0, 0, 1}});
  corpus.documents.push_back({{4, 5, 6, 7, 4}, {2, 1, 2}});
  auto fit = [&](int threads) {
    topic::AtmOptions options;
    options.num_topics = 3;
    options.iterations = 8;
    options.burn_in = 4;
    options.num_threads = threads;
    Rng rng(23);
    auto model = topic::FitAtm(corpus, options, &rng);
    EXPECT_TRUE(model.ok());
    return std::move(model).value();
  };
  const topic::AtmModel one = fit(1);
  const topic::AtmModel four = fit(4);
  for (int a = 0; a < one.theta.rows(); ++a) {
    EXPECT_NEAR(one.theta.RowSum(a), 1.0, 1e-9);
    for (int t = 0; t < one.theta.cols(); ++t) {
      ASSERT_EQ(one.theta(a, t), four.theta(a, t));
    }
  }
}

TEST(JraConflictAgreementTest, IlpAndCpHonourConflicts) {
  Instance instance = PoolInstance(9, 2, 3, 303);
  instance.AddConflict(0, 0);
  instance.AddConflict(3, 0);
  instance.AddConflict(7, 0);
  auto bfs = SolveJraBruteForce(instance, 0);
  auto ilp = SolveJraIlp(instance, 0);
  auto cp = SolveJraCp(instance, 0);
  ASSERT_TRUE(bfs.ok() && ilp.ok() && cp.ok());
  EXPECT_NEAR(ilp->score, bfs->score, 1e-6);
  EXPECT_NEAR(cp->score, bfs->score, 1e-9);
  for (const auto* result : {&*ilp, &*cp}) {
    for (int r : result->group) {
      EXPECT_NE(r, 0);
      EXPECT_NE(r, 3);
      EXPECT_NE(r, 7);
    }
  }
}

TEST(JraConflictAgreementTest, ConflictOnlyAffectsItsPaper) {
  Instance instance = PoolInstance(9, 2, 2, 304);
  auto before = SolveJraBba(instance, 1);
  ASSERT_TRUE(before.ok());
  // Conflict the optimum of paper 0; paper 1's optimum is untouched.
  auto p0 = SolveJraBba(instance, 0);
  ASSERT_TRUE(p0.ok());
  instance.AddConflict(p0->group[0], 0);
  auto after = SolveJraBba(instance, 1);
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(before->score, after->score);
}

}  // namespace
}  // namespace wgrap::core
