// Metrics tests: ideal assignment dominance, optimality/superiority ratios,
// lowest coverage, Fig. 7 closed forms, and the case-study report.
#include <gtest/gtest.h>

#include <cmath>

#include "core/case_study.h"
#include "core/cra.h"
#include "core/metrics.h"
#include "data/synthetic_dblp.h"

namespace wgrap::core {
namespace {

struct Fixture {
  data::RapDataset dataset;
  Instance instance;
};

Fixture MakeFixture(int reviewers, int papers, int group_size, uint64_t seed) {
  data::SyntheticDblpConfig config;
  config.num_topics = 8;
  config.seed = seed;
  auto dataset = data::GenerateReviewerPool(reviewers, papers, config);
  EXPECT_TRUE(dataset.ok());
  InstanceParams params;
  params.group_size = group_size;
  auto instance = Instance::FromDataset(*dataset, params);
  EXPECT_TRUE(instance.ok());
  return Fixture{std::move(dataset).value(), std::move(instance).value()};
}

TEST(IdealAssignmentTest, DominatesEveryFeasibleSolver) {
  Fixture f = MakeFixture(10, 8, 3, 91);
  auto ideal = BuildIdealAssignment(f.instance);
  ASSERT_TRUE(ideal.ok());
  auto greedy = SolveCraGreedy(f.instance);
  auto sdga = SolveCraSdga(f.instance);
  ASSERT_TRUE(greedy.ok() && sdga.ok());
  EXPECT_GE(ideal->TotalScore(), greedy->TotalScore() - 1e-9);
  EXPECT_GE(ideal->TotalScore(), sdga->TotalScore() - 1e-9);
  // Per-paper: the ideal group is at least as good as any feasible group.
  for (int p = 0; p < f.instance.num_papers(); ++p) {
    EXPECT_GE(ideal->PaperScore(p), sdga->PaperScore(p) - 1e-9);
  }
}

TEST(IdealAssignmentTest, IgnoresWorkloads) {
  // One super-expert: the ideal assignment reuses them for every paper.
  data::RapDataset dataset;
  dataset.num_topics = 2;
  dataset.reviewers.push_back({"star", {0.5, 0.5}, 1});
  dataset.reviewers.push_back({"weak", {0.98, 0.02}, 1});
  for (int i = 0; i < 4; ++i) {
    dataset.papers.push_back({"p", {0.5, 0.5}, "V"});
  }
  InstanceParams params;
  params.group_size = 1;
  params.reviewer_workload = 2;
  auto instance = Instance::FromDataset(dataset, params);
  ASSERT_TRUE(instance.ok());
  auto ideal = BuildIdealAssignment(*instance);
  ASSERT_TRUE(ideal.ok());
  EXPECT_EQ(ideal->LoadOf(0), 4);  // far above δr = 2
  EXPECT_NEAR(ideal->TotalScore(), 4.0, 1e-9);
}

TEST(MetricsTest, OptimalityRatioInUnitRange) {
  Fixture f = MakeFixture(10, 8, 3, 92);
  auto ideal = BuildIdealAssignment(f.instance);
  auto sdga = SolveCraSdga(f.instance);
  ASSERT_TRUE(ideal.ok() && sdga.ok());
  const double ratio = OptimalityRatio(*sdga, *ideal);
  EXPECT_GT(ratio, 0.0);
  EXPECT_LE(ratio, 1.0 + 1e-12);
  EXPECT_DOUBLE_EQ(OptimalityRatio(*ideal, *ideal), 1.0);
}

TEST(MetricsTest, SuperiorityRatioReflexive) {
  Fixture f = MakeFixture(8, 6, 2, 93);
  auto sdga = SolveCraSdga(f.instance);
  ASSERT_TRUE(sdga.ok());
  const Superiority s = SuperiorityRatio(*sdga, *sdga);
  EXPECT_DOUBLE_EQ(s.better_or_equal, 1.0);
  EXPECT_DOUBLE_EQ(s.tie, 1.0);
}

TEST(MetricsTest, SuperiorityOfIdealIsTotal) {
  Fixture f = MakeFixture(8, 6, 2, 94);
  auto ideal = BuildIdealAssignment(f.instance);
  auto greedy = SolveCraGreedy(f.instance);
  ASSERT_TRUE(ideal.ok() && greedy.ok());
  EXPECT_DOUBLE_EQ(SuperiorityRatio(*ideal, *greedy).better_or_equal, 1.0);
}

TEST(MetricsTest, LowestCoverageIsMinimum) {
  Fixture f = MakeFixture(8, 6, 2, 95);
  auto sdga = SolveCraSdga(f.instance);
  ASSERT_TRUE(sdga.ok());
  const double lowest = LowestCoverage(*sdga);
  for (int p = 0; p < f.instance.num_papers(); ++p) {
    EXPECT_LE(lowest, sdga->PaperScore(p) + 1e-12);
  }
  EXPECT_GE(lowest, 0.0);
}

TEST(Fig7ClosedFormsTest, MatchPaperValues) {
  // Integral case: 1 - (1 - 1/δp)^δp; general: exponent δp - 1.
  EXPECT_NEAR(SdgaRatioIntegral(2), 0.75, 1e-12);
  EXPECT_NEAR(SdgaRatioGeneral(2), 0.5, 1e-12);       // Theorem 2 floor
  EXPECT_NEAR(SdgaRatioGeneral(3), 5.0 / 9.0, 1e-12); // quoted in Sec. 4.3
  EXPECT_NEAR(SdgaRatioGeneral(5), 0.5904, 1e-4);     // quoted in Sec. 4.3
  // Monotone increasing in δp, approaching 1 - 1/e.
  for (int dp = 2; dp < 10; ++dp) {
    EXPECT_LT(SdgaRatioGeneral(dp), SdgaRatioGeneral(dp + 1));
    EXPECT_GE(SdgaRatioGeneral(dp), 0.5 - 1e-12);
  }
  EXPECT_NEAR(SdgaRatioIntegral(1000), 1.0 - 1.0 / M_E, 1e-3);
}

TEST(CaseStudyTest, TopTopicsSortedByPaperWeight) {
  Fixture f = MakeFixture(6, 4, 2, 96);
  const auto top = TopTopics(f.instance, 0, 5);
  ASSERT_EQ(top.size(), 5u);
  const double* pv = f.instance.PaperVector(0);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(pv[top[i - 1]], pv[top[i]]);
  }
}

TEST(CaseStudyTest, ReportContainsPaperAndGroupRows) {
  Fixture f = MakeFixture(6, 4, 2, 97);
  auto sdga = SolveCraSdga(f.instance);
  ASSERT_TRUE(sdga.ok());
  const auto report = BuildCaseStudy(f.instance, *sdga, f.dataset, 0, 5);
  ASSERT_EQ(report.rows.size(), 1u + 2u);  // paper + δp reviewers
  EXPECT_EQ(report.rows[0].label, "Paper");
  EXPECT_EQ(report.rows[0].weights.size(), 5u);
  EXPECT_NEAR(report.group_score, sdga->PaperScore(0), 1e-12);
  const std::string text = FormatCaseStudy(report, "SDGA");
  EXPECT_NE(text.find("SDGA (Score ="), std::string::npos);
  EXPECT_NE(text.find("Paper"), std::string::npos);
}

}  // namespace
}  // namespace wgrap::core
