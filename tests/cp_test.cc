// CP select-k engine tests: additive objectives vs exhaustive enumeration,
// forbidden pairs, infeasibility, and limit handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "cp/select_k.h"

namespace wgrap::cp {
namespace {

// Additive objective: sum of item weights; bound via suffix max.
class AdditiveObjective final : public SelectionObjective {
 public:
  explicit AdditiveObjective(std::vector<double> weights)
      : weights_(std::move(weights)) {
    suffix_max_.assign(weights_.size() + 1, 0.0);
    for (int i = static_cast<int>(weights_.size()) - 1; i >= 0; --i) {
      suffix_max_[i] = std::max(suffix_max_[i + 1], weights_[i]);
    }
  }
  double Evaluate(const std::vector<int>& chosen) const override {
    double total = 0.0;
    for (int i : chosen) total += weights_[i];
    return total;
  }
  double Bound(const std::vector<int>& chosen, int next,
               int remaining) const override {
    return Evaluate(chosen) + remaining * suffix_max_[next];
  }

 private:
  std::vector<double> weights_;
  std::vector<double> suffix_max_;
};

TEST(SelectKTest, PicksTopWeights) {
  AdditiveObjective obj({0.2, 0.9, 0.4, 0.8});
  auto result = SolveSelectK(4, 2, obj);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective, 1.7, 1e-9);
  std::vector<int> chosen = result->chosen;
  std::sort(chosen.begin(), chosen.end());
  EXPECT_EQ(chosen, (std::vector<int>{1, 3}));
  EXPECT_TRUE(result->proven_optimal);
}

TEST(SelectKTest, ForbiddenPairRespected) {
  AdditiveObjective obj({0.9, 0.8, 0.1});
  auto result = SolveSelectK(3, 2, obj, {{0, 1}});
  ASSERT_TRUE(result.ok());
  std::vector<int> chosen = result->chosen;
  std::sort(chosen.begin(), chosen.end());
  EXPECT_EQ(chosen, (std::vector<int>{0, 2}));
}

TEST(SelectKTest, AllPairsForbiddenInfeasible) {
  AdditiveObjective obj({1.0, 1.0, 1.0});
  auto result = SolveSelectK(3, 2, obj, {{0, 1}, {0, 2}, {1, 2}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(SelectKTest, KExceedsNInfeasible) {
  AdditiveObjective obj({1.0});
  auto result = SolveSelectK(1, 2, obj);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(SelectKTest, KZeroReturnsEmpty) {
  AdditiveObjective obj({1.0, 2.0});
  auto result = SolveSelectK(2, 0, obj);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->chosen.empty());
}

TEST(SelectKTest, NodeLimitReportsNotProven) {
  std::vector<double> weights(20);
  Rng rng(6);
  for (auto& w : weights) w = rng.NextDouble();
  AdditiveObjective obj(weights);
  SelectKOptions options;
  options.max_nodes = 5;
  auto result = SolveSelectK(20, 10, obj, {}, options);
  if (result.ok()) {
    EXPECT_FALSE(result->proven_optimal);
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  }
}

class SelectKRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SelectKRandomTest, MatchesEnumeration) {
  Rng rng(5000 + GetParam());
  const int n = 4 + GetParam() % 6;
  const int k = 1 + GetParam() % 3;
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.NextDouble();
  AdditiveObjective obj(weights);
  auto result = SolveSelectK(n, k, obj);
  ASSERT_TRUE(result.ok());

  double best = -1.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    if (__builtin_popcount(mask) != k) continue;
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) total += weights[i];
    }
    best = std::max(best, total);
  }
  EXPECT_NEAR(result->objective, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, SelectKRandomTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace wgrap::cp
