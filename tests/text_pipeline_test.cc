// Tokenizer / vocabulary / LDA tests: text normalization, stop-word and
// frequency filtering, corpus building from raw text, and LDA recovering
// structure from a two-topic corpus (plus agreement with EM inference).
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "topic/em.h"
#include "topic/lda.h"
#include "topic/tokenizer.h"

namespace wgrap::topic {
namespace {

TEST(TokenizerTest, LowercasesAndSplitsOnNonAlpha) {
  const auto tokens = Tokenize("Query-Processing over B+Trees (v2).");
  EXPECT_EQ(tokens, (std::vector<std::string>{"query", "processing", "over",
                                              "trees"}));
}

TEST(TokenizerTest, MinLengthFilters) {
  const auto tokens = Tokenize("a an the ab abc", /*min_length=*/3);
  EXPECT_EQ(tokens, (std::vector<std::string>{"the", "abc"}));
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("12 34 !!").empty());
}

TEST(StopWordTest, CommonWordsCaught) {
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("propose"));
  EXPECT_FALSE(IsStopWord("database"));
}

TEST(VocabularyTest, StableIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.GetOrAdd("join"), 0);
  EXPECT_EQ(vocab.GetOrAdd("index"), 1);
  EXPECT_EQ(vocab.GetOrAdd("join"), 0);
  EXPECT_EQ(vocab.size(), 2);
  EXPECT_EQ(vocab.word(1), "index");
  EXPECT_EQ(vocab.Find("index"), 1);
  EXPECT_EQ(vocab.Find("missing"), -1);
}

TEST(BuildCorpusTest, EndToEnd) {
  std::vector<RawDocument> docs = {
      {"The query optimizer rewrites the query plan.", {0}},
      {"Index structures accelerate query processing!", {0, 1}},
  };
  auto built = BuildCorpus(docs, /*num_authors=*/2);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->corpus.num_documents(), 2);
  EXPECT_EQ(built->corpus.num_authors, 2);
  // "the" is a stop word; "query" appears in both documents.
  EXPECT_EQ(built->vocabulary.Find("the"), -1);
  const int query_id = built->vocabulary.Find("query");
  ASSERT_GE(query_id, 0);
  int query_count = 0;
  for (const auto& doc : built->corpus.documents) {
    for (int w : doc.words) query_count += w == query_id;
  }
  EXPECT_EQ(query_count, 3);
}

TEST(BuildCorpusTest, DocumentFrequencyCutoff) {
  std::vector<RawDocument> docs = {
      {"uniqueone shared shared", {0}},
      {"uniquetwo shared shared", {0}},
  };
  CorpusBuilderOptions options;
  options.min_document_frequency = 2;
  auto built = BuildCorpus(docs, 1, options);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->vocabulary.size(), 1);  // only "shared" survives
  EXPECT_EQ(built->vocabulary.Find("uniqueone"), -1);
}

TEST(BuildCorpusTest, RejectsDegenerateInput) {
  EXPECT_FALSE(BuildCorpus({}, 1).ok());
  EXPECT_FALSE(BuildCorpus({{"the a an", {0}}}, 1).ok());  // empties out
  EXPECT_FALSE(BuildCorpus({{"words here", {5}}}, 1).ok());  // bad author
  EXPECT_FALSE(BuildCorpus({{"words here", {}}}, 1).ok());   // no author
}

TEST(LdaTest, RejectsBadOptions) {
  Corpus corpus;
  corpus.vocab_size = 4;
  corpus.num_authors = 1;
  corpus.documents.push_back({{0, 1}, {0}});
  Rng rng(1);
  LdaOptions options;
  options.num_topics = 0;
  EXPECT_FALSE(FitLda(corpus, options, &rng).ok());
}

TEST(LdaTest, RecoverTwoDisjointTopics) {
  // Documents use either words {0..4} or {5..9}; with T=2 LDA should
  // separate them almost perfectly.
  Corpus corpus;
  corpus.vocab_size = 10;
  corpus.num_authors = 1;
  Rng data_rng(7);
  for (int d = 0; d < 40; ++d) {
    Document doc;
    doc.authors = {0};
    const int base = d % 2 == 0 ? 0 : 5;
    for (int i = 0; i < 60; ++i) {
      doc.words.push_back(base + static_cast<int>(data_rng.NextBounded(5)));
    }
    corpus.documents.push_back(std::move(doc));
  }
  Rng rng(8);
  LdaOptions options;
  options.num_topics = 2;
  options.iterations = 120;
  options.burn_in = 60;
  auto model = FitLda(corpus, options, &rng);
  ASSERT_TRUE(model.ok());
  // Each document loads >90% on a single topic, and even/odd documents load
  // on different topics.
  const int topic_of_doc0 =
      model->doc_topics(0, 0) > model->doc_topics(0, 1) ? 0 : 1;
  int agree = 0;
  for (int d = 0; d < 40; ++d) {
    const int dominant =
        model->doc_topics(d, 0) > model->doc_topics(d, 1) ? 0 : 1;
    const int expected = d % 2 == 0 ? topic_of_doc0 : 1 - topic_of_doc0;
    agree += dominant == expected;
    EXPECT_GT(model->doc_topics(d, dominant), 0.8) << "doc " << d;
  }
  EXPECT_GE(agree, 38);
}

TEST(LdaTest, PhiRowsAreDistributions) {
  Corpus corpus;
  corpus.vocab_size = 20;
  corpus.num_authors = 1;
  Rng data_rng(9);
  for (int d = 0; d < 10; ++d) {
    Document doc;
    doc.authors = {0};
    for (int i = 0; i < 30; ++i) {
      doc.words.push_back(static_cast<int>(data_rng.NextBounded(20)));
    }
    corpus.documents.push_back(std::move(doc));
  }
  Rng rng(10);
  LdaOptions options;
  options.num_topics = 3;
  options.iterations = 40;
  options.burn_in = 20;
  auto model = FitLda(corpus, options, &rng);
  ASSERT_TRUE(model.ok());
  for (int t = 0; t < 3; ++t) {
    EXPECT_NEAR(model->phi.RowSum(t), 1.0, 1e-9);
  }
  for (int d = 0; d < 10; ++d) {
    EXPECT_NEAR(model->doc_topics.RowSum(d), 1.0, 1e-9);
  }
}

TEST(LdaTest, EmInferenceAgreesWithFittedDocTopics) {
  // EM against the fitted phi should land close to LDA's own doc mixture
  // on a cleanly separable corpus.
  Corpus corpus;
  corpus.vocab_size = 10;
  corpus.num_authors = 1;
  Rng data_rng(11);
  for (int d = 0; d < 30; ++d) {
    Document doc;
    doc.authors = {0};
    const int base = d % 2 == 0 ? 0 : 5;
    for (int i = 0; i < 50; ++i) {
      doc.words.push_back(base + static_cast<int>(data_rng.NextBounded(5)));
    }
    corpus.documents.push_back(std::move(doc));
  }
  Rng rng(12);
  LdaOptions options;
  options.num_topics = 2;
  options.iterations = 100;
  options.burn_in = 50;
  auto model = FitLda(corpus, options, &rng);
  ASSERT_TRUE(model.ok());
  auto inferred = InferTopicMixture(corpus.documents[0].words, model->phi);
  ASSERT_TRUE(inferred.ok());
  for (int t = 0; t < 2; ++t) {
    EXPECT_NEAR((*inferred)[t], model->doc_topics(0, t), 0.1);
  }
}

}  // namespace
}  // namespace wgrap::topic
