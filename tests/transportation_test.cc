// Transportation wrapper tests: equivalence with Hungarian when all
// capacities are 1, capacity handling, demand > 1, forbidden pairs and
// infeasibility detection.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/rng.h"
#include "la/hungarian.h"
#include "la/transportation.h"

namespace wgrap::la {
namespace {

TEST(TransportationTest, SimpleTwoByTwo) {
  Matrix profit(2, 2);
  profit.At(0, 0) = 0.9;
  profit.At(0, 1) = 0.1;
  profit.At(1, 0) = 0.8;
  profit.At(1, 1) = 0.7;
  auto result = SolveTransportation(profit, {1, 1});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->task_to_agent[0], 0);
  EXPECT_EQ(result->task_to_agent[1], 1);
  EXPECT_NEAR(result->profit, 1.6, 1e-9);
}

TEST(TransportationTest, CapacityAllowsReuse) {
  // One strong agent with capacity 2 should take both tasks.
  Matrix profit(2, 2);
  profit.At(0, 0) = 1.0;
  profit.At(0, 1) = 0.1;
  profit.At(1, 0) = 1.0;
  profit.At(1, 1) = 0.1;
  auto result = SolveTransportation(profit, {2, 1});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->task_to_agent[0], 0);
  EXPECT_EQ(result->task_to_agent[1], 0);
}

TEST(TransportationTest, CapacityForcesSpread) {
  Matrix profit(2, 2);
  profit.At(0, 0) = 1.0;
  profit.At(0, 1) = 0.9;
  profit.At(1, 0) = 1.0;
  profit.At(1, 1) = 0.1;
  // Agent 0 can take only one; the optimal split gives task 0 to agent 1.
  auto result = SolveTransportation(profit, {1, 1});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->task_to_agent[0], 1);
  EXPECT_EQ(result->task_to_agent[1], 0);
  EXPECT_NEAR(result->profit, 1.9, 1e-9);
}

TEST(TransportationTest, InsufficientCapacityInfeasible) {
  Matrix profit(3, 2, 1.0);
  auto result = SolveTransportation(profit, {1, 1});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(TransportationTest, ForbiddenPairAvoided) {
  Matrix profit(2, 2, 0.5);
  profit.At(0, 0) = kTransportForbidden;
  auto result = SolveTransportation(profit, {1, 1});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->task_to_agent[0], 1);
}

TEST(TransportationTest, AllForbiddenForTaskInfeasible) {
  Matrix profit(1, 2, kTransportForbidden);
  auto result = SolveTransportation(profit, {1, 1});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(TransportationTest, DemandAssignsDistinctAgents) {
  Matrix profit(1, 4);
  for (int a = 0; a < 4; ++a) profit.At(0, a) = 0.1 * (a + 1);
  auto result = SolveTransportationWithDemand(profit, {1, 1, 1, 1}, 3);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->task_to_agents[0].size(), 3u);
  // Best three agents: 1, 2, 3.
  EXPECT_NEAR(result->profit, 0.2 + 0.3 + 0.4, 1e-9);
}

TEST(TransportationTest, ZeroDemandIsEmpty) {
  Matrix profit(2, 2, 1.0);
  auto result = SolveTransportationWithDemand(profit, {1, 1}, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->task_to_agents[0].empty());
  EXPECT_DOUBLE_EQ(result->profit, 0.0);
}

// Regression for the int64 profit-scaling hardening: profits at the
// documented boundary still solve, anything beyond it (other than the
// forbidden marker, which is skipped before scaling) is rejected with
// kInvalidArgument instead of silently scaling into garbage.
TEST(TransportationTest, RejectsProfitsOutsideScalableRange) {
  Matrix at_boundary(1, 2, 0.5);
  at_boundary.At(0, 0) = kMaxTransportProfit;
  at_boundary.At(0, 1) = -kMaxTransportProfit;
  auto ok = SolveTransportation(at_boundary, {1, 1});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->task_to_agent[0], 0);

  for (const double bad :
       {kMaxTransportProfit * (1.0 + 1e-6), -2e6,
        std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    Matrix profit(1, 2, 0.5);
    profit.At(0, 0) = bad;
    auto rejected = SolveTransportation(profit, {1, 1});
    ASSERT_FALSE(rejected.ok()) << bad;
    EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument) << bad;
  }

  // The forbidden marker is not a profit — still accepted (skipped).
  Matrix with_forbidden(1, 2, 0.5);
  with_forbidden.At(0, 0) = kTransportForbidden;
  auto skipped = SolveTransportation(with_forbidden, {1, 1});
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(skipped->task_to_agent[0], 1);
}

class TransportationVsHungarianTest : public ::testing::TestWithParam<int> {};

TEST_P(TransportationVsHungarianTest, UnitCapacitiesMatchHungarian) {
  Rng rng(3000 + GetParam());
  const int tasks = 2 + GetParam() % 4;
  const int agents = tasks + GetParam() % 3;
  Matrix profit(tasks, agents);
  for (int t = 0; t < tasks; ++t) {
    for (int a = 0; a < agents; ++a) profit.At(t, a) = rng.NextDouble();
  }
  auto transport = SolveTransportation(profit, std::vector<int>(agents, 1));
  auto hungarian = SolveMaxProfitAssignment(profit);
  ASSERT_TRUE(transport.ok());
  ASSERT_TRUE(hungarian.ok());
  EXPECT_NEAR(transport->profit, hungarian->objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, TransportationVsHungarianTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace wgrap::la
