// Assignment container tests: incremental group-vector and score
// maintenance, add/remove invariants, capacity and COI enforcement, and a
// randomized consistency property against recomputation from scratch.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/assignment.h"
#include "core/jra.h"
#include "data/synthetic_dblp.h"

namespace wgrap::core {
namespace {

data::RapDataset TinyDataset() {
  data::RapDataset dataset;
  dataset.num_topics = 3;
  dataset.reviewers.push_back({"r0", {0.1, 0.5, 0.4}, 1});
  dataset.reviewers.push_back({"r1", {1.0, 0.0, 0.0}, 1});
  dataset.reviewers.push_back({"r2", {0.0, 1.0, 0.0}, 1});
  dataset.papers.push_back({"p0", {0.6, 0.0, 0.4}, "V"});
  dataset.papers.push_back({"p1", {0.5, 0.5, 0.0}, "V"});
  dataset.papers.push_back({"p2", {0.5, 0.5, 0.0}, "V"});
  return dataset;
}

Instance MakeInstance(int group_size = 2, int workload = 2) {
  InstanceParams params;
  params.group_size = group_size;
  params.reviewer_workload = workload;
  auto instance = Instance::FromDataset(TinyDataset(), params);
  EXPECT_TRUE(instance.ok());
  return std::move(instance).value();
}

TEST(AssignmentTest, StartsEmpty) {
  Instance instance = MakeInstance();
  Assignment assignment(&instance);
  EXPECT_EQ(assignment.size(), 0);
  EXPECT_DOUBLE_EQ(assignment.TotalScore(), 0.0);
  EXPECT_TRUE(assignment.GroupFor(0).empty());
  EXPECT_EQ(assignment.LoadOf(0), 0);
}

TEST(AssignmentTest, AddUpdatesGroupVectorAndScore) {
  Instance instance = MakeInstance();
  Assignment assignment(&instance);
  ASSERT_TRUE(assignment.Add(0, 1).ok());  // r1 = (1,0,0) on p0 = (.6,0,.4)
  EXPECT_EQ(assignment.size(), 1);
  EXPECT_NEAR(assignment.PaperScore(0), 0.6, 1e-12);
  EXPECT_NEAR(assignment.GroupVector(0)[0], 1.0, 1e-12);
  ASSERT_TRUE(assignment.Add(0, 0).ok());  // r0 adds the t3 coverage
  EXPECT_NEAR(assignment.PaperScore(0), 1.0, 1e-12);
  EXPECT_NEAR(assignment.TotalScore(), 1.0, 1e-12);
}

TEST(AssignmentTest, DuplicateAddRejected) {
  Instance instance = MakeInstance();
  Assignment assignment(&instance);
  ASSERT_TRUE(assignment.Add(0, 1).ok());
  EXPECT_EQ(assignment.Add(0, 1).code(), StatusCode::kFailedPrecondition);
}

TEST(AssignmentTest, GroupSizeEnforced) {
  Instance instance = MakeInstance(/*group_size=*/1);
  Assignment assignment(&instance);
  ASSERT_TRUE(assignment.Add(0, 1).ok());
  EXPECT_EQ(assignment.Add(0, 2).code(), StatusCode::kFailedPrecondition);
}

TEST(AssignmentTest, WorkloadEnforced) {
  Instance instance = MakeInstance(/*group_size=*/2, /*workload=*/2);
  Assignment assignment(&instance);
  ASSERT_TRUE(assignment.Add(0, 1).ok());
  ASSERT_TRUE(assignment.Add(1, 1).ok());
  EXPECT_EQ(assignment.Add(2, 1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(assignment.LoadOf(1), 2);
}

TEST(AssignmentTest, AddUncheckedIgnoresCapacity) {
  Instance instance = MakeInstance(/*group_size=*/1, /*workload=*/1);
  Assignment assignment(&instance);
  ASSERT_TRUE(assignment.AddUnchecked(0, 1).ok());
  ASSERT_TRUE(assignment.AddUnchecked(1, 1).ok());  // over workload: allowed
  ASSERT_TRUE(assignment.AddUnchecked(2, 1).ok());
  EXPECT_EQ(assignment.LoadOf(1), 3);
}

TEST(AssignmentTest, ConflictRejectedEvenUnchecked) {
  Instance instance = MakeInstance();
  instance.AddConflict(1, 0);
  Assignment assignment(&instance);
  EXPECT_EQ(assignment.Add(0, 1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(assignment.AddUnchecked(0, 1).code(),
            StatusCode::kFailedPrecondition);
}

TEST(AssignmentTest, RemoveRestoresState) {
  Instance instance = MakeInstance();
  Assignment assignment(&instance);
  ASSERT_TRUE(assignment.Add(0, 1).ok());
  ASSERT_TRUE(assignment.Add(0, 0).ok());
  const double with_both = assignment.PaperScore(0);
  ASSERT_TRUE(assignment.Remove(0, 0).ok());
  EXPECT_EQ(assignment.size(), 1);
  EXPECT_NEAR(assignment.PaperScore(0), 0.6, 1e-12);
  EXPECT_LT(assignment.PaperScore(0), with_both);
  EXPECT_EQ(assignment.LoadOf(0), 0);
  // Group vector recomputed: topic 1 contribution of r0 gone.
  EXPECT_NEAR(assignment.GroupVector(0)[1], 0.0, 1e-12);
}

TEST(AssignmentTest, RemoveMissingPairFails) {
  Instance instance = MakeInstance();
  Assignment assignment(&instance);
  EXPECT_EQ(assignment.Remove(0, 1).code(), StatusCode::kNotFound);
}

TEST(AssignmentTest, OutOfRangeIdsRejected) {
  Instance instance = MakeInstance();
  Assignment assignment(&instance);
  EXPECT_EQ(assignment.Add(-1, 0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(assignment.Add(0, 9).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(assignment.Remove(5, 0).code(), StatusCode::kOutOfRange);
}

TEST(AssignmentTest, MarginalGainMatchesAddDelta) {
  Instance instance = MakeInstance();
  Assignment assignment(&instance);
  ASSERT_TRUE(assignment.Add(1, 1).ok());
  const double gain = assignment.MarginalGain(1, 2);
  const double before = assignment.TotalScore();
  ASSERT_TRUE(assignment.Add(1, 2).ok());
  EXPECT_NEAR(assignment.TotalScore() - before, gain, 1e-12);
}

TEST(AssignmentTest, ValidateCompleteDetectsUnderfilledGroup) {
  Instance instance = MakeInstance();
  Assignment assignment(&instance);
  ASSERT_TRUE(assignment.Add(0, 1).ok());
  EXPECT_EQ(assignment.ValidateComplete().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AssignmentTest, RandomizedConsistencyAgainstRecomputation) {
  // Random add/remove churn; cached scores must always equal ScoreGroup.
  data::SyntheticDblpConfig config;
  config.num_topics = 8;
  auto dataset = data::GenerateReviewerPool(12, 6, config);
  ASSERT_TRUE(dataset.ok());
  InstanceParams params;
  params.group_size = 4;
  params.reviewer_workload = 12;
  auto instance = Instance::FromDataset(*dataset, params);
  ASSERT_TRUE(instance.ok());

  Assignment assignment(&*instance);
  Rng rng(77);
  for (int step = 0; step < 500; ++step) {
    const int p = static_cast<int>(rng.NextBounded(6));
    const int r = static_cast<int>(rng.NextBounded(12));
    if (rng.NextDouble() < 0.6) {
      (void)assignment.Add(p, r);  // may legitimately fail
    } else {
      (void)assignment.Remove(p, r);
    }
    if (step % 50 == 0) {
      double total = 0.0;
      for (int q = 0; q < 6; ++q) {
        const double expected =
            assignment.GroupFor(q).empty()
                ? 0.0
                : ScoreGroup(*instance, q, assignment.GroupFor(q));
        ASSERT_NEAR(assignment.PaperScore(q), expected, 1e-9);
        total += expected;
      }
      ASSERT_NEAR(assignment.TotalScore(), total, 1e-9);
    }
  }
}

}  // namespace
}  // namespace wgrap::core
