// CRA solver tests: feasibility of every solver's output, exact-optimum
// comparisons on tiny instances (SDGA ratio bound, Greedy 1/3 bound),
// the Sec. 4.2 workload-reservation example, refinement monotonicity,
// COI handling and backend agreement.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/cra.h"
#include "core/jra.h"
#include "core/metrics.h"
#include "data/synthetic_dblp.h"

namespace wgrap::core {
namespace {

Instance SmallInstance(int reviewers, int papers, int group_size,
                       uint64_t seed, int workload = 0) {
  data::SyntheticDblpConfig config;
  config.num_topics = 8;
  config.seed = seed;
  auto dataset = data::GenerateReviewerPool(reviewers, papers, config);
  EXPECT_TRUE(dataset.ok());
  InstanceParams params;
  params.group_size = group_size;
  params.reviewer_workload = workload;
  auto instance = Instance::FromDataset(*dataset, params);
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  return std::move(instance).value();
}

// Exhaustive optimal WGRAP objective for tiny instances: recursively assign
// groups to papers under workload constraints.
double ExactOptimal(const Instance& instance) {
  const int P = instance.num_papers();
  const int R = instance.num_reviewers();
  std::vector<int> load(R, 0);
  std::function<double(int)> best_for = [&](int p) -> double {
    if (p == P) return 0.0;
    double best = -1.0;
    std::vector<int> group;  // this paper's group only
    std::function<void(int, int)> pick = [&](int from, int need) {
      if (need == 0) {
        const double score = ScoreGroup(instance, p, group);
        const double rest = best_for(p + 1);
        if (rest >= 0.0 && score + rest > best) best = score + rest;
        return;
      }
      for (int r = from; r <= R - need; ++r) {
        if (load[r] >= instance.reviewer_workload() ||
            instance.IsConflict(r, p)) {
          continue;
        }
        ++load[r];
        group.push_back(r);
        pick(r + 1, need - 1);
        group.pop_back();
        --load[r];
      }
    };
    pick(0, instance.group_size());
    return best;
  };
  return best_for(0);
}

using SolverFn =
    std::function<Result<Assignment>(const Instance&)>;

std::vector<std::pair<std::string, SolverFn>> AllSolvers() {
  return {
      {"SM", [](const Instance& i) { return SolveCraStableMatching(i); }},
      {"ILP", [](const Instance& i) { return SolveCraIlpArap(i); }},
      {"BRGG", [](const Instance& i) { return SolveCraBrgg(i); }},
      {"Greedy", [](const Instance& i) { return SolveCraGreedy(i); }},
      {"SDGA", [](const Instance& i) { return SolveCraSdga(i); }},
      {"SDGA-SRA",
       [](const Instance& i) {
         SraOptions sra;
         sra.max_iterations = 30;
         return SolveCraSdgaSra(i, {}, sra);
       }},
  };
}

TEST(CraFeasibilityTest, AllSolversProduceCompleteAssignments) {
  Instance instance = SmallInstance(10, 8, 3, 31);
  for (const auto& [name, solve] : AllSolvers()) {
    auto assignment = solve(instance);
    ASSERT_TRUE(assignment.ok()) << name << ": "
                                 << assignment.status().ToString();
    EXPECT_TRUE(assignment->ValidateComplete().ok()) << name;
    EXPECT_GT(assignment->TotalScore(), 0.0) << name;
  }
}

TEST(CraFeasibilityTest, MinimalWorkloadInstanceStillFeasible) {
  // δr = ⌈P·δp/R⌉ forces every reviewer into play (Sec. 5.2 setting).
  Instance instance = SmallInstance(7, 9, 3, 32);
  EXPECT_EQ(instance.reviewer_workload(), 4);  // ceil(27/7)
  for (const auto& [name, solve] : AllSolvers()) {
    auto assignment = solve(instance);
    ASSERT_TRUE(assignment.ok()) << name;
    EXPECT_TRUE(assignment->ValidateComplete().ok()) << name;
  }
}

TEST(CraApproximationTest, SdgaMeetsTheoremBoundOnTinyInstances) {
  for (uint64_t seed : {41, 42, 43, 44, 45}) {
    Instance instance = SmallInstance(5, 3, 2, seed, /*workload=*/2);
    const double optimal = ExactOptimal(instance);
    ASSERT_GT(optimal, 0.0);
    auto sdga = SolveCraSdga(instance);
    ASSERT_TRUE(sdga.ok());
    // Theorem 2 guarantees 1/2; integral case (δr divisible by δp) gives
    // 1 - 1/e. Here δr=2, δp=2 -> integral, bound = 1 - (1 - 1/2)^2 = 0.75.
    EXPECT_GE(sdga->TotalScore(), 0.75 * optimal - 1e-9) << "seed " << seed;
  }
}

TEST(CraApproximationTest, GreedyMeetsOneThirdOnTinyInstances) {
  for (uint64_t seed : {51, 52, 53}) {
    Instance instance = SmallInstance(5, 3, 2, seed, /*workload=*/2);
    const double optimal = ExactOptimal(instance);
    auto greedy = SolveCraGreedy(instance);
    ASSERT_TRUE(greedy.ok());
    EXPECT_GE(greedy->TotalScore(), optimal / 3.0 - 1e-9) << "seed " << seed;
  }
}

TEST(CraSdgaTest, WorkloadReservationExampleFromSection42) {
  // The 3x3 example of Sec. 4.2: without the per-stage cap, r1 is spent on
  // p2/p3 in stage 1 and nobody covers t3 of p1 in stage 2.
  data::RapDataset dataset;
  dataset.num_topics = 3;
  dataset.reviewers.push_back({"r1", {0.1, 0.5, 0.4}, 1});
  dataset.reviewers.push_back({"r2", {1.0, 0.0, 0.0}, 1});
  dataset.reviewers.push_back({"r3", {0.0, 1.0, 0.0}, 1});
  dataset.papers.push_back({"p1", {0.6, 0.0, 0.4}, "V"});
  dataset.papers.push_back({"p2", {0.5, 0.5, 0.0}, "V"});
  dataset.papers.push_back({"p3", {0.5, 0.5, 0.0}, "V"});
  InstanceParams params;
  params.group_size = 2;
  params.reviewer_workload = 2;
  auto instance = Instance::FromDataset(dataset, params);
  ASSERT_TRUE(instance.ok());

  auto confined = SolveCraSdga(*instance);
  ASSERT_TRUE(confined.ok());
  // With the cap (⌈2/2⌉ = 1 per stage), r1 reaches p1 and covers t3:
  // optimal total is 1.0 (p1) + 1.0 (p2) + 0.9 (p3) or a permutation.
  const double optimal = ExactOptimal(*instance);
  EXPECT_NEAR(confined->TotalScore(), optimal, 1e-9);

  SdgaOptions unconfined;
  unconfined.confine_stage_workload = false;
  auto greedy_stages = SolveCraSdga(*instance, unconfined);
  ASSERT_TRUE(greedy_stages.ok());
  EXPECT_LE(greedy_stages->TotalScore(), confined->TotalScore() + 1e-9);
}

TEST(CraSdgaTest, BackendsAgreeOnObjective) {
  for (uint64_t seed : {61, 62, 63}) {
    Instance instance = SmallInstance(9, 7, 3, seed);
    SdgaOptions flow_options;
    flow_options.backend = LapBackend::kMinCostFlow;
    SdgaOptions hungarian_options;
    hungarian_options.backend = LapBackend::kHungarian;
    auto flow = SolveCraSdga(instance, flow_options);
    auto hungarian = SolveCraSdga(instance, hungarian_options);
    ASSERT_TRUE(flow.ok() && hungarian.ok());
    // Both stages solve the same LAP optimally; per-stage objectives match
    // (the chosen argmax may differ on ties, so compare stage-wise totals).
    EXPECT_NEAR(flow->TotalScore(), hungarian->TotalScore(), 1e-6)
        << "seed " << seed;
  }
}

TEST(CraIlpArapTest, MaximizesPairwiseObjective) {
  // ARAP maximizes Σ c(r,p); compare against exhaustive search on the
  // pairwise objective (not the group objective).
  Instance instance = SmallInstance(4, 3, 2, 71, /*workload=*/2);
  auto ilp = SolveCraIlpArap(instance);
  ASSERT_TRUE(ilp.ok());
  double ilp_pairwise = 0.0;
  for (int p = 0; p < instance.num_papers(); ++p) {
    for (int r : ilp->GroupFor(p)) ilp_pairwise += instance.PairScore(r, p);
  }
  // Exhaustive: assign 2 distinct reviewers per paper, workload 2.
  std::vector<int> load(4, 0);
  double best = -1.0;
  std::function<double(int)> rec = [&](int p) -> double {
    if (p == 3) return 0.0;
    double local_best = -1.0;
    for (int a = 0; a < 4; ++a) {
      for (int b = a + 1; b < 4; ++b) {
        if (load[a] >= 2 || load[b] >= 2) continue;
        ++load[a];
        ++load[b];
        const double rest = rec(p + 1);
        if (rest >= 0.0) {
          const double total = instance.PairScore(a, p) +
                               instance.PairScore(b, p) + rest;
          if (total > local_best) local_best = total;
        }
        --load[a];
        --load[b];
      }
    }
    return local_best;
  };
  best = rec(0);
  EXPECT_NEAR(ilp_pairwise, best, 1e-6);
}

TEST(CraRefinementTest, SraNeverWorseThanInitial) {
  for (uint64_t seed : {81, 82, 83}) {
    Instance instance = SmallInstance(10, 8, 3, seed);
    auto sdga = SolveCraSdga(instance);
    ASSERT_TRUE(sdga.ok());
    SraOptions options;
    options.max_iterations = 25;
    options.seed = seed;
    auto refined = RefineSra(instance, *sdga, options);
    ASSERT_TRUE(refined.ok());
    EXPECT_GE(refined->TotalScore(), sdga->TotalScore() - 1e-12);
    EXPECT_TRUE(refined->ValidateComplete().ok());
  }
}

TEST(CraRefinementTest, SraUniformAblationStillFeasible) {
  Instance instance = SmallInstance(8, 6, 2, 84);
  auto sdga = SolveCraSdga(instance);
  ASSERT_TRUE(sdga.ok());
  SraOptions options;
  options.uniform_probability = true;
  options.max_iterations = 15;
  auto refined = RefineSra(instance, *sdga, options);
  ASSERT_TRUE(refined.ok());
  EXPECT_GE(refined->TotalScore(), sdga->TotalScore() - 1e-12);
}

TEST(CraRefinementTest, SraTraceIsMonotoneNonDecreasing) {
  Instance instance = SmallInstance(9, 7, 3, 85);
  auto sdga = SolveCraSdga(instance);
  ASSERT_TRUE(sdga.ok());
  std::vector<double> scores;
  SraOptions options;
  options.max_iterations = 20;
  options.trace = [&](double, double score) { scores.push_back(score); };
  auto refined = RefineSra(instance, *sdga, options);
  ASSERT_TRUE(refined.ok());
  ASSERT_GE(scores.size(), 2u);
  for (size_t i = 1; i < scores.size(); ++i) {
    EXPECT_GE(scores[i], scores[i - 1] - 1e-12);
  }
  EXPECT_NEAR(scores.back(), refined->TotalScore(), 1e-9);
}

TEST(CraRefinementTest, LocalSearchNeverWorseThanInitial) {
  Instance instance = SmallInstance(10, 8, 3, 86);
  auto sdga = SolveCraSdga(instance);
  ASSERT_TRUE(sdga.ok());
  LocalSearchOptions options;
  options.max_stall_proposals = 2000;
  auto refined = RefineLocalSearch(instance, *sdga, options);
  ASSERT_TRUE(refined.ok());
  EXPECT_GE(refined->TotalScore(), sdga->TotalScore() - 1e-12);
  EXPECT_TRUE(refined->ValidateComplete().ok());
}

TEST(CraRefinementTest, RejectsIncompleteInitial) {
  Instance instance = SmallInstance(6, 4, 2, 87);
  Assignment incomplete(&instance);
  SraOptions sra;
  EXPECT_FALSE(RefineSra(instance, incomplete, sra).ok());
  LocalSearchOptions ls;
  EXPECT_FALSE(RefineLocalSearch(instance, incomplete, ls).ok());
}

TEST(CraConflictTest, AllSolversRespectConflicts) {
  Instance instance = SmallInstance(9, 6, 2, 88);
  // Conflict the strongest reviewer of every paper.
  for (int p = 0; p < instance.num_papers(); ++p) {
    int best = 0;
    for (int r = 1; r < instance.num_reviewers(); ++r) {
      if (instance.PairScore(r, p) > instance.PairScore(best, p)) best = r;
    }
    instance.AddConflict(best, p);
  }
  for (const auto& [name, solve] : AllSolvers()) {
    auto assignment = solve(instance);
    ASSERT_TRUE(assignment.ok()) << name;
    EXPECT_TRUE(assignment->ValidateComplete().ok()) << name;
  }
}

TEST(CraDeterminismTest, SolversAreDeterministic) {
  Instance instance = SmallInstance(10, 8, 3, 89);
  for (const auto& [name, solve] : AllSolvers()) {
    auto a = solve(instance);
    auto b = solve(instance);
    ASSERT_TRUE(a.ok() && b.ok()) << name;
    EXPECT_DOUBLE_EQ(a->TotalScore(), b->TotalScore()) << name;
  }
}

TEST(CraQualityTest, SdgaSraBeatsOrMatchesBaselinesAtScale) {
  // Small conference-shaped instance; the paper's headline ordering should
  // hold: SDGA-SRA >= max(SM, ILP) and >= Greedy (within tolerance).
  data::SyntheticDblpConfig config;
  config.num_topics = 12;
  config.seed = 7;
  auto dataset = data::GenerateReviewerPool(30, 60, config);
  ASSERT_TRUE(dataset.ok());
  InstanceParams params;
  params.group_size = 3;
  auto instance = Instance::FromDataset(*dataset, params);
  ASSERT_TRUE(instance.ok());

  auto sm = SolveCraStableMatching(*instance);
  auto ilp = SolveCraIlpArap(*instance);
  auto greedy = SolveCraGreedy(*instance);
  SraOptions sra;
  sra.max_iterations = 60;
  auto sdga_sra = SolveCraSdgaSra(*instance, {}, sra);
  ASSERT_TRUE(sm.ok() && ilp.ok() && greedy.ok() && sdga_sra.ok());
  EXPECT_GE(sdga_sra->TotalScore(), sm->TotalScore() - 1e-9);
  EXPECT_GE(sdga_sra->TotalScore(), ilp->TotalScore() - 1e-9);
  EXPECT_GE(sdga_sra->TotalScore(), greedy->TotalScore() * 0.98);
}

}  // namespace
}  // namespace wgrap::core
