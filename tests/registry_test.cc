// Tests for the solver registry (core/registry.h): every built-in solver
// is present, instantiates on a tiny instance through the factory API, and
// produces a feasible assignment (or an optimal group, for JRA solvers).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/check.h"
#include "core/registry.h"
#include "core/wgrap.h"
#include "data/synthetic_dblp.h"

namespace wgrap {
namespace {

core::Instance TinyInstance() {
  data::SyntheticDblpConfig config;
  config.seed = 7;
  config.num_topics = 8;
  auto dataset = data::GenerateReviewerPool(/*num_reviewers=*/12,
                                            /*num_papers=*/8, config);
  WGRAP_CHECK(dataset.ok());
  core::InstanceParams params;
  params.group_size = 2;
  auto instance = core::Instance::FromDataset(*dataset, params);
  WGRAP_CHECK(instance.ok());
  return std::move(instance).value();
}

TEST(SolverRegistryTest, ListsAllBuiltInSolvers) {
  const auto& registry = core::SolverRegistry::Default();
  std::set<std::string> names;
  for (const auto* descriptor : registry.List()) {
    names.insert(descriptor->name);
  }
  // The acceptance bar for this repo: at least 8 solvers behind one API.
  EXPECT_GE(names.size(), 8u);
  for (const char* expected :
       {"greedy", "brgg", "sdga", "sdga-sra", "sdga-ls", "sm", "ilp", "rrap",
        "bba", "bfs", "jra-ilp", "jra-cp"}) {
    EXPECT_TRUE(names.count(expected)) << "missing solver: " << expected;
  }
}

TEST(SolverRegistryTest, DescriptorsAreWellFormed) {
  const auto& registry = core::SolverRegistry::Default();
  for (const auto* descriptor : registry.List()) {
    EXPECT_FALSE(descriptor->paper_name.empty()) << descriptor->name;
    EXPECT_FALSE(descriptor->summary.empty()) << descriptor->name;
    const bool is_cra = descriptor->family == core::SolverFamily::kCra;
    // CRA descriptors build from scratch and/or refine; JRA descriptors
    // set exactly the JRA callable.
    EXPECT_EQ(is_cra, static_cast<bool>(descriptor->cra) ||
                          static_cast<bool>(descriptor->refine))
        << descriptor->name;
    EXPECT_EQ(!is_cra, static_cast<bool>(descriptor->jra)) << descriptor->name;
  }
  EXPECT_EQ(registry.List().size(),
            registry.List(core::SolverFamily::kCra).size() +
                registry.List(core::SolverFamily::kJra).size());
}

TEST(SolverRegistryTest, EveryCraSolverProducesExpectedFeasibility) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  for (const auto* descriptor : registry.List(core::SolverFamily::kCra)) {
    SCOPED_TRACE(descriptor->name);
    if (!descriptor->cra) {
      // Refinement-only entries (sra, ls) cannot build from scratch; the
      // dispatch error must say so and point at the refine path.
      auto refused = registry.SolveCra(descriptor->name, instance);
      ASSERT_FALSE(refused.ok());
      EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
      EXPECT_NE(refused.status().message().find("refine"),
                std::string::npos);
      continue;
    }
    auto assignment = registry.SolveCra(descriptor->name, instance);
    ASSERT_TRUE(assignment.ok()) << assignment.status().ToString();
    EXPECT_GT(assignment->TotalScore(), 0.0);
    const Status valid = assignment->ValidateComplete();
    if (descriptor->produces_feasible) {
      EXPECT_TRUE(valid.ok()) << valid.ToString();
      for (int p = 0; p < instance.num_papers(); ++p) {
        EXPECT_EQ(static_cast<int>(assignment->GroupFor(p).size()),
                  instance.group_size());
      }
      for (int r = 0; r < instance.num_reviewers(); ++r) {
        EXPECT_LE(assignment->LoadOf(r), instance.reviewer_workload());
      }
    }
  }
}

TEST(SolverRegistryTest, EveryJraSolverAgreesWithBruteForce) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  const int paper = 3;
  auto reference = registry.SolveJra("bfs", instance, paper);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (const auto* descriptor : registry.List(core::SolverFamily::kJra)) {
    SCOPED_TRACE(descriptor->name);
    auto result = registry.SolveJra(descriptor->name, instance, paper);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(static_cast<int>(result->group.size()), instance.group_size());
    std::set<int> unique(result->group.begin(), result->group.end());
    EXPECT_EQ(unique.size(), result->group.size());
    // All four JRA solvers are exact — they must match brute force.
    EXPECT_NEAR(result->score, reference->score, 1e-9);
    EXPECT_NEAR(result->score, core::ScoreGroup(instance, paper, result->group),
                1e-9);
  }
}

TEST(SolverRegistryTest, UnknownNamesAndFamilyMismatchesAreRejected) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  auto missing = registry.SolveCra("no-such-solver", instance);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // The error names the valid keys, so CLI users see the menu.
  EXPECT_NE(missing.status().message().find("sdga-sra"), std::string::npos);

  auto wrong_family = registry.SolveCra("bba", instance);
  ASSERT_FALSE(wrong_family.ok());
  EXPECT_EQ(wrong_family.status().code(), StatusCode::kInvalidArgument);
  auto wrong_family_jra = registry.SolveJra("sdga", instance, 0);
  ASSERT_FALSE(wrong_family_jra.ok());
  EXPECT_EQ(wrong_family_jra.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, RefineFromInitialHook) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  auto initial = registry.SolveCra("sdga", instance);
  ASSERT_TRUE(initial.ok()) << initial.status().ToString();

  core::SolverRunOptions options;
  options.seed = 11;
  auto refined = registry.RefineCra("sra", instance, *initial, options);
  ASSERT_TRUE(refined.ok()) << refined.status().ToString();
  EXPECT_GE(refined->TotalScore(), initial->TotalScore());
  EXPECT_TRUE(refined->ValidateComplete().ok());
  // The hook runs the same code as a direct RefineSra call.
  core::SraOptions direct;
  direct.seed = 11;
  auto reference = core::RefineSra(instance, *initial, direct);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(refined->TotalScore(), reference->TotalScore());

  auto ls = registry.RefineCra("ls", instance, *initial, options);
  ASSERT_TRUE(ls.ok()) << ls.status().ToString();
  EXPECT_GE(ls->TotalScore(), initial->TotalScore());

  // Solvers without the hook are rejected with a pointer at the refiners;
  // unknown names keep the kNotFound contract.
  auto no_hook = registry.RefineCra("sdga", instance, *initial);
  ASSERT_FALSE(no_hook.ok());
  EXPECT_EQ(no_hook.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(no_hook.status().message().find("sra"), std::string::npos);
  auto unknown = registry.RefineCra("no-such-solver", instance, *initial);
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST(SolverRegistryTest, RegisterRejectsDuplicatesAndMalformedDescriptors) {
  core::SolverRegistry registry;
  core::SolverDescriptor d;
  d.name = "custom";
  d.family = core::SolverFamily::kCra;
  d.paper_name = "Custom";
  d.summary = "test";
  d.cra = [](const core::Instance& instance,
             const core::SolverRunOptions&) -> Result<core::Assignment> {
    return core::SolveCraGreedy(instance);
  };
  EXPECT_TRUE(registry.Register(d).ok());
  EXPECT_EQ(registry.Register(d).code(), StatusCode::kFailedPrecondition);

  core::SolverDescriptor no_fn;
  no_fn.name = "broken";
  no_fn.family = core::SolverFamily::kJra;
  EXPECT_EQ(registry.Register(no_fn).code(), StatusCode::kInvalidArgument);
  core::SolverDescriptor unnamed = d;
  unnamed.name.clear();
  EXPECT_EQ(registry.Register(unnamed).code(), StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, ExtraKnobsAreThreadedThrough) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  core::SolverRunOptions options;
  options.extra["threads"] = "4";
  options.extra["lap"] = "hungarian";
  options.extra["sra_omega"] = "3";
  options.extra["sra_lambda"] = "0.1";
  auto assignment = registry.SolveCra("sdga-sra", instance, options);
  ASSERT_TRUE(assignment.ok()) << assignment.status().ToString();
  EXPECT_TRUE(assignment->ValidateComplete().ok());
  // Unknown keys are ignored so custom registrations can define their own.
  options.extra["custom_knob"] = "whatever";
  EXPECT_TRUE(registry.SolveCra("sdga", instance, options).ok());
}

TEST(SolverRegistryTest, TopicsKnobSelectsSparseKernels) {
  const auto& registry = core::SolverRegistry::Default();
  core::Instance instance = TinyInstance();
  instance.DropSparseTopics();  // deterministic under forced-sparse CI

  // "sparse" without CSR views is rejected with a message naming the fix.
  core::SolverRunOptions options;
  options.extra["topics"] = "sparse";
  auto rejected = registry.SolveCra("sdga", instance, options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("BuildSparseTopics"),
            std::string::npos);
  EXPECT_FALSE(registry.SolveJra("bba", instance, 0, options).ok());

  // With views built, sparse output matches dense exactly.
  auto dense = registry.SolveCra("sdga", instance);
  ASSERT_TRUE(dense.ok());
  instance.BuildSparseTopics();
  auto sparse_result = registry.SolveCra("sdga", instance, options);
  ASSERT_TRUE(sparse_result.ok()) << sparse_result.status().ToString();
  EXPECT_EQ(dense->TotalScore(), sparse_result->TotalScore());
}

TEST(SolverRegistryTest, BbaKnobsAreThreadedThrough) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  auto reference = registry.SolveJra("bba", instance, 1);
  ASSERT_TRUE(reference.ok());
  // Ablations stay exact (they only change pruning/branching order), so
  // the score must agree while the node count moves.
  core::SolverRunOptions ablated;
  ablated.extra["bba_bounding"] = "off";
  ablated.extra["bba_gain_branching"] = "false";
  auto result = registry.SolveJra("bba", instance, 1, ablated);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->score, reference->score, 1e-12);
  EXPECT_GE(result->nodes_explored, reference->nodes_explored);
}

TEST(SolverRegistryTest, SolveJraTopKReturnsSortedExactGroups) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  const int paper = 3;
  const int k = 4;
  auto results = registry.SolveJraTopK("bba", instance, paper, k);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(static_cast<int>(results->size()), k);
  // Best-first, and the head is exactly the single-group answer.
  auto best = registry.SolveJra("bba", instance, paper);
  ASSERT_TRUE(best.ok());
  EXPECT_NEAR((*results)[0].score, best->score, 1e-12);
  for (size_t i = 0; i + 1 < results->size(); ++i) {
    EXPECT_GE((*results)[i].score, (*results)[i + 1].score) << i;
  }
  for (const auto& result : *results) {
    EXPECT_EQ(static_cast<int>(result.group.size()), instance.group_size());
    std::set<int> unique(result.group.begin(), result.group.end());
    EXPECT_EQ(unique.size(), result.group.size());
    EXPECT_NEAR(result.score,
                core::ScoreGroup(instance, paper, result.group), 1e-9);
  }
  // Groups are distinct across ranks.
  std::set<std::set<int>> seen;
  for (const auto& result : *results) {
    seen.insert(std::set<int>(result.group.begin(), result.group.end()));
  }
  EXPECT_EQ(seen.size(), results->size());
}

TEST(SolverRegistryTest, SolveJraTopKDispatchErrors) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  // Solvers without the hook point at the ones that have it.
  auto no_hook = registry.SolveJraTopK("bfs", instance, 0, 3);
  ASSERT_FALSE(no_hook.ok());
  EXPECT_EQ(no_hook.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(no_hook.status().message().find("bba"), std::string::npos);
  // Unknown names keep the kNotFound contract with the JRA menu.
  auto unknown = registry.SolveJraTopK("no-such-solver", instance, 0, 3);
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  // Family mismatch and malformed k.
  EXPECT_EQ(registry.SolveJraTopK("sdga", instance, 0, 3).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.SolveJraTopK("bba", instance, 0, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, MalformedExtraValuesAreRejected) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  for (const auto& [key, value] :
       {std::pair<const char*, const char*>{"threads", "many"},
        {"threads", "0"},
        {"threads", "100000"},  // bounded: each worker is an OS thread
        {"lap", "simplex"},
        {"sra_omega", "0"},
        {"sra_lambda", "fast"},
        {"topics", "csr"},
        {"gains", "cached"},
        {"bba_bounding", "maybe"},
        {"bba_gain_branching", "2"},
        {"update_refine", "cold"}}) {
    core::SolverRunOptions options;
    options.extra[key] = value;
    auto result = registry.SolveCra("sdga-sra", instance, options);
    ASSERT_FALSE(result.ok()) << key;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << key;
    // The error names the offending key.
    EXPECT_NE(result.status().message().find(key), std::string::npos) << key;
    // Reserved keys are validated at dispatch, so even solvers that ignore
    // the knob diagnose a typo instead of silently running.
    EXPECT_FALSE(registry.SolveCra("greedy", instance, options).ok()) << key;
  }
}

TEST(SolverRunOptionsTest, TypedExtraAccessors) {
  core::SolverRunOptions options;
  EXPECT_EQ(*options.ExtraInt("absent", 7), 7);
  EXPECT_EQ(*options.ExtraDouble("absent", 0.5), 0.5);
  EXPECT_EQ(options.ExtraString("absent", "x"), "x");
  EXPECT_EQ(*options.ExtraBool("absent", true), true);
  for (const char* yes : {"true", "1", "on"}) {
    options.extra["flag"] = yes;
    EXPECT_TRUE(*options.ExtraBool("flag", false)) << yes;
  }
  for (const char* no : {"false", "0", "off"}) {
    options.extra["flag"] = no;
    EXPECT_FALSE(*options.ExtraBool("flag", true)) << no;
  }
  options.extra["flag"] = "yes";
  EXPECT_EQ(options.ExtraBool("flag", false).status().code(),
            StatusCode::kInvalidArgument);
  options.extra["a"] = "42";
  options.extra["b"] = "2.25";
  options.extra["c"] = "text";
  EXPECT_EQ(*options.ExtraInt("a", 0), 42);
  EXPECT_EQ(*options.ExtraDouble("b", 0.0), 2.25);
  EXPECT_EQ(options.ExtraString("c", ""), "text");
  EXPECT_EQ(options.ExtraInt("c", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(options.ExtraDouble("c", 0.0).status().code(),
            StatusCode::kInvalidArgument);
  // Values outside int range are rejected, not truncated.
  options.extra["d"] = "4294967297";
  EXPECT_EQ(options.ExtraInt("d", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, TimeLimitIsThreadedThrough) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  core::SolverRunOptions options;
  options.time_limit_seconds = 5.0;  // generous; must still terminate fast
  auto assignment = registry.SolveCra("sdga-sra", instance, options);
  ASSERT_TRUE(assignment.ok()) << assignment.status().ToString();
  EXPECT_TRUE(assignment->ValidateComplete().ok());
}

}  // namespace
}  // namespace wgrap
