// Tests for the solver registry (core/registry.h): every built-in solver
// is present, instantiates on a tiny instance through the factory API, and
// produces a feasible assignment (or an optimal group, for JRA solvers).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/registry.h"
#include "core/wgrap.h"
#include "data/synthetic_dblp.h"

namespace wgrap {
namespace {

core::Instance TinyInstance() {
  data::SyntheticDblpConfig config;
  config.seed = 7;
  config.num_topics = 8;
  auto dataset = data::GenerateReviewerPool(/*num_reviewers=*/12,
                                            /*num_papers=*/8, config);
  WGRAP_CHECK(dataset.ok());
  core::InstanceParams params;
  params.group_size = 2;
  auto instance = core::Instance::FromDataset(*dataset, params);
  WGRAP_CHECK(instance.ok());
  return std::move(instance).value();
}

TEST(SolverRegistryTest, ListsAllBuiltInSolvers) {
  const auto& registry = core::SolverRegistry::Default();
  std::set<std::string> names;
  for (const auto* descriptor : registry.List()) {
    names.insert(descriptor->name);
  }
  // The acceptance bar for this repo: at least 8 solvers behind one API.
  EXPECT_GE(names.size(), 8u);
  for (const char* expected :
       {"greedy", "brgg", "sdga", "sdga-sra", "sdga-ls", "sm", "ilp", "rrap",
        "bba", "bfs", "jra-ilp", "jra-cp"}) {
    EXPECT_TRUE(names.count(expected)) << "missing solver: " << expected;
  }
}

TEST(SolverRegistryTest, DescriptorsAreWellFormed) {
  const auto& registry = core::SolverRegistry::Default();
  for (const auto* descriptor : registry.List()) {
    EXPECT_FALSE(descriptor->paper_name.empty()) << descriptor->name;
    EXPECT_FALSE(descriptor->summary.empty()) << descriptor->name;
    const bool is_cra = descriptor->family == core::SolverFamily::kCra;
    // CRA descriptors build from scratch and/or refine; JRA descriptors
    // set exactly the JRA callable.
    EXPECT_EQ(is_cra, static_cast<bool>(descriptor->cra) ||
                          static_cast<bool>(descriptor->refine))
        << descriptor->name;
    EXPECT_EQ(!is_cra, static_cast<bool>(descriptor->jra)) << descriptor->name;
  }
  EXPECT_EQ(registry.List().size(),
            registry.List(core::SolverFamily::kCra).size() +
                registry.List(core::SolverFamily::kJra).size());
}

TEST(SolverRegistryTest, EveryCraSolverProducesExpectedFeasibility) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  for (const auto* descriptor : registry.List(core::SolverFamily::kCra)) {
    SCOPED_TRACE(descriptor->name);
    if (!descriptor->cra) {
      // Refinement-only entries (sra, ls) cannot build from scratch; the
      // dispatch error must say so and point at the refine path.
      auto refused = registry.SolveCra(descriptor->name, instance);
      ASSERT_FALSE(refused.ok());
      EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
      EXPECT_NE(refused.status().message().find("refine"),
                std::string::npos);
      continue;
    }
    auto assignment = registry.SolveCra(descriptor->name, instance);
    ASSERT_TRUE(assignment.ok()) << assignment.status().ToString();
    EXPECT_GT(assignment->TotalScore(), 0.0);
    const Status valid = assignment->ValidateComplete();
    if (descriptor->produces_feasible) {
      EXPECT_TRUE(valid.ok()) << valid.ToString();
      for (int p = 0; p < instance.num_papers(); ++p) {
        EXPECT_EQ(static_cast<int>(assignment->GroupFor(p).size()),
                  instance.group_size());
      }
      for (int r = 0; r < instance.num_reviewers(); ++r) {
        EXPECT_LE(assignment->LoadOf(r), instance.reviewer_workload());
      }
    }
  }
}

TEST(SolverRegistryTest, EveryJraSolverAgreesWithBruteForce) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  const int paper = 3;
  auto reference = registry.SolveJra("bfs", instance, paper);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (const auto* descriptor : registry.List(core::SolverFamily::kJra)) {
    SCOPED_TRACE(descriptor->name);
    auto result = registry.SolveJra(descriptor->name, instance, paper);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(static_cast<int>(result->group.size()), instance.group_size());
    std::set<int> unique(result->group.begin(), result->group.end());
    EXPECT_EQ(unique.size(), result->group.size());
    // All four JRA solvers are exact — they must match brute force.
    EXPECT_NEAR(result->score, reference->score, 1e-9);
    EXPECT_NEAR(result->score, core::ScoreGroup(instance, paper, result->group),
                1e-9);
  }
}

TEST(SolverRegistryTest, UnknownNamesAndFamilyMismatchesAreRejected) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  auto missing = registry.SolveCra("no-such-solver", instance);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // The error names the valid keys, so CLI users see the menu.
  EXPECT_NE(missing.status().message().find("sdga-sra"), std::string::npos);

  auto wrong_family = registry.SolveCra("bba", instance);
  ASSERT_FALSE(wrong_family.ok());
  EXPECT_EQ(wrong_family.status().code(), StatusCode::kInvalidArgument);
  auto wrong_family_jra = registry.SolveJra("sdga", instance, 0);
  ASSERT_FALSE(wrong_family_jra.ok());
  EXPECT_EQ(wrong_family_jra.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, RefineFromInitialHook) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  auto initial = registry.SolveCra("sdga", instance);
  ASSERT_TRUE(initial.ok()) << initial.status().ToString();

  core::SolverRunOptions options;
  options.seed = 11;
  auto refined = registry.RefineCra("sra", instance, *initial, options);
  ASSERT_TRUE(refined.ok()) << refined.status().ToString();
  EXPECT_GE(refined->TotalScore(), initial->TotalScore());
  EXPECT_TRUE(refined->ValidateComplete().ok());
  // The hook runs the same code as a direct RefineSra call.
  core::SraOptions direct;
  direct.seed = 11;
  auto reference = core::RefineSra(instance, *initial, direct);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(refined->TotalScore(), reference->TotalScore());

  auto ls = registry.RefineCra("ls", instance, *initial, options);
  ASSERT_TRUE(ls.ok()) << ls.status().ToString();
  EXPECT_GE(ls->TotalScore(), initial->TotalScore());

  // Solvers without the hook are rejected with a pointer at the refiners;
  // unknown names keep the kNotFound contract.
  auto no_hook = registry.RefineCra("sdga", instance, *initial);
  ASSERT_FALSE(no_hook.ok());
  EXPECT_EQ(no_hook.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(no_hook.status().message().find("sra"), std::string::npos);
  auto unknown = registry.RefineCra("no-such-solver", instance, *initial);
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST(SolverRegistryTest, RegisterRejectsDuplicatesAndMalformedDescriptors) {
  core::SolverRegistry registry;
  core::SolverDescriptor d;
  d.name = "custom";
  d.family = core::SolverFamily::kCra;
  d.paper_name = "Custom";
  d.summary = "test";
  d.cra = [](const core::Instance& instance,
             const core::SolverRunOptions&) -> Result<core::Assignment> {
    return core::SolveCraGreedy(instance);
  };
  EXPECT_TRUE(registry.Register(d).ok());
  EXPECT_EQ(registry.Register(d).code(), StatusCode::kFailedPrecondition);

  core::SolverDescriptor no_fn;
  no_fn.name = "broken";
  no_fn.family = core::SolverFamily::kJra;
  EXPECT_EQ(registry.Register(no_fn).code(), StatusCode::kInvalidArgument);
  core::SolverDescriptor unnamed = d;
  unnamed.name.clear();
  EXPECT_EQ(registry.Register(unnamed).code(), StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, ExtraKnobsAreThreadedThrough) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  core::SolverRunOptions options;
  options.extra["threads"] = "4";
  options.extra["lap"] = "hungarian";
  options.extra["sra_omega"] = "3";
  options.extra["sra_lambda"] = "0.1";
  auto assignment = registry.SolveCra("sdga-sra", instance, options);
  ASSERT_TRUE(assignment.ok()) << assignment.status().ToString();
  EXPECT_TRUE(assignment->ValidateComplete().ok());
  // Undeclared keys are rejected at dispatch — the error names the key and
  // lists the solver's declared knobs so the caller can self-correct.
  options.extra["custom_knob"] = "whatever";
  auto rejected = registry.SolveCra("sdga-sra", instance, options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("custom_knob"),
            std::string::npos);
  EXPECT_NE(rejected.status().message().find("sra_omega"), std::string::npos);
  // A knob another solver declares is still unknown here: greedy takes no
  // threads knob (it is single-threaded), so the typo'd intent surfaces.
  core::SolverRunOptions wrong_solver;
  wrong_solver.extra["threads"] = "4";
  auto wrong = registry.SolveCra("greedy", instance, wrong_solver);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(wrong.status().message().find("threads"), std::string::npos);
}

TEST(SolverRegistryTest, TopicsKnobSelectsSparseKernels) {
  const auto& registry = core::SolverRegistry::Default();
  core::Instance instance = TinyInstance();
  instance.DropSparseTopics();  // deterministic under forced-sparse CI

  // "sparse" without CSR views is rejected with a message naming the fix.
  core::SolverRunOptions options;
  options.extra["topics"] = "sparse";
  auto rejected = registry.SolveCra("sdga", instance, options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("BuildSparseTopics"),
            std::string::npos);
  EXPECT_FALSE(registry.SolveJra("bba", instance, 0, options).ok());

  // With views built, sparse output matches dense exactly.
  auto dense = registry.SolveCra("sdga", instance);
  ASSERT_TRUE(dense.ok());
  instance.BuildSparseTopics();
  auto sparse_result = registry.SolveCra("sdga", instance, options);
  ASSERT_TRUE(sparse_result.ok()) << sparse_result.status().ToString();
  EXPECT_EQ(dense->TotalScore(), sparse_result->TotalScore());
}

TEST(SolverRegistryTest, BbaKnobsAreThreadedThrough) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  auto reference = registry.SolveJra("bba", instance, 1);
  ASSERT_TRUE(reference.ok());
  // Ablations stay exact (they only change pruning/branching order), so
  // the score must agree while the node count moves.
  core::SolverRunOptions ablated;
  ablated.extra["bba_bounding"] = "off";
  ablated.extra["bba_gain_branching"] = "false";
  auto result = registry.SolveJra("bba", instance, 1, ablated);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->score, reference->score, 1e-12);
  EXPECT_GE(result->nodes_explored, reference->nodes_explored);
}

TEST(SolverRegistryTest, SolveJraTopKReturnsSortedExactGroups) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  const int paper = 3;
  const int k = 4;
  auto results = registry.SolveJraTopK("bba", instance, paper, k);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(static_cast<int>(results->size()), k);
  // Best-first, and the head is exactly the single-group answer.
  auto best = registry.SolveJra("bba", instance, paper);
  ASSERT_TRUE(best.ok());
  EXPECT_NEAR((*results)[0].score, best->score, 1e-12);
  for (size_t i = 0; i + 1 < results->size(); ++i) {
    EXPECT_GE((*results)[i].score, (*results)[i + 1].score) << i;
  }
  for (const auto& result : *results) {
    EXPECT_EQ(static_cast<int>(result.group.size()), instance.group_size());
    std::set<int> unique(result.group.begin(), result.group.end());
    EXPECT_EQ(unique.size(), result.group.size());
    EXPECT_NEAR(result.score,
                core::ScoreGroup(instance, paper, result.group), 1e-9);
  }
  // Groups are distinct across ranks.
  std::set<std::set<int>> seen;
  for (const auto& result : *results) {
    seen.insert(std::set<int>(result.group.begin(), result.group.end()));
  }
  EXPECT_EQ(seen.size(), results->size());
}

TEST(SolverRegistryTest, SolveJraTopKDispatchErrors) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  // Solvers without the hook point at the ones that have it.
  auto no_hook = registry.SolveJraTopK("bfs", instance, 0, 3);
  ASSERT_FALSE(no_hook.ok());
  EXPECT_EQ(no_hook.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(no_hook.status().message().find("bba"), std::string::npos);
  // Unknown names keep the kNotFound contract with the JRA menu.
  auto unknown = registry.SolveJraTopK("no-such-solver", instance, 0, 3);
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  // Family mismatch and malformed k.
  EXPECT_EQ(registry.SolveJraTopK("sdga", instance, 0, 3).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.SolveJraTopK("bba", instance, 0, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, MalformedExtraValuesAreRejected) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  // Each key below is declared by sdga-sra, so the failure is a value-level
  // schema violation (bad type, out-of-range, or illegal enum member).
  for (const auto& [key, value] :
       {std::pair<const char*, const char*>{"threads", "many"},
        {"threads", "0"},
        {"threads", "100000"},  // bounded: each worker is an OS thread
        {"lap", "simplex"},
        {"sra_omega", "0"},
        {"sra_lambda", "fast"},
        {"topics", "csr"},
        {"gains", "cached"}}) {
    core::SolverRunOptions options;
    options.extra[key] = value;
    auto result = registry.SolveCra("sdga-sra", instance, options);
    ASSERT_FALSE(result.ok()) << key;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << key;
    // The error names the offending key.
    EXPECT_NE(result.status().message().find(key), std::string::npos) << key;
  }
  // Bool knobs on the JRA side follow the same contract.
  for (const auto& [key, value] :
       {std::pair<const char*, const char*>{"bba_bounding", "maybe"},
        {"bba_gain_branching", "2"}}) {
    core::SolverRunOptions options;
    options.extra[key] = value;
    auto result = registry.SolveJra("bba", instance, 1, options);
    ASSERT_FALSE(result.ok()) << key;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << key;
    EXPECT_NE(result.status().message().find(key), std::string::npos) << key;
  }
}

TEST(SolverRegistryTest, DescriptorsDeclareWellFormedKnobSchemas) {
  const auto& registry = core::SolverRegistry::Default();
  for (const auto* descriptor : registry.List()) {
    // Every solver can pick its topic representation — the one knob that is
    // cross-cutting by design (sparse_test exercises it on all of them).
    const core::KnobSpec* topics = descriptor->FindKnob("topics");
    ASSERT_NE(topics, nullptr) << descriptor->name;
    EXPECT_EQ(topics->type, core::KnobType::kEnum) << descriptor->name;
    EXPECT_EQ(descriptor->FindKnob("no_such_knob"), nullptr)
        << descriptor->name;
    for (const auto& knob : descriptor->knobs) {
      SCOPED_TRACE(descriptor->name + std::string("/") + knob.name);
      EXPECT_FALSE(knob.name.empty());
      EXPECT_FALSE(knob.doc.empty());
      // The rendered line carries the name and the default so
      // `solvers --verbose` / DescribeSolvers are self-describing.
      const std::string line = core::FormatKnobSpec(knob);
      EXPECT_NE(line.find(knob.name), std::string::npos);
      EXPECT_NE(line.find(core::KnobTypeToString(knob.type)),
                std::string::npos);
      // Declared defaults must satisfy their own spec.
      if (!knob.default_value.empty()) {
        EXPECT_TRUE(
            core::ValidateKnobValue(knob, knob.default_value).ok());
      }
    }
  }
  // The update pipeline shares the same schema machinery.
  const auto& update_knobs = core::IncrementalResolveKnobSpecs();
  EXPECT_FALSE(update_knobs.empty());
  bool has_refine = false;
  for (const auto& knob : update_knobs) {
    if (knob.name == "update_refine") has_refine = true;
  }
  EXPECT_TRUE(has_refine);
  EXPECT_EQ(core::ValidateKnobs("update", update_knobs,
                                {{"update_refine", "cold"}})
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, RunUnifiedDispatchMatchesLegacyWrappers) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();

  core::SolverRequest solve;
  solve.kind = core::SolverRequest::Kind::kSolveCra;
  solve.solver = "sdga";
  auto response = registry.Run(solve, instance);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->assignment.has_value());
  EXPECT_GE(response->seconds, 0.0);
  auto legacy = registry.SolveCra("sdga", instance);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(response->assignment->TotalScore(), legacy->TotalScore());

  core::SolverRequest refine;
  refine.kind = core::SolverRequest::Kind::kRefineCra;
  refine.solver = "sra";
  refine.initial = &*response->assignment;
  auto refined = registry.Run(refine, instance);
  ASSERT_TRUE(refined.ok()) << refined.status().ToString();
  ASSERT_TRUE(refined->assignment.has_value());
  EXPECT_GE(refined->assignment->TotalScore(), legacy->TotalScore());
  // A refine request without an initial assignment is a caller bug.
  refine.initial = nullptr;
  EXPECT_EQ(registry.Run(refine, instance).status().code(),
            StatusCode::kInvalidArgument);

  core::SolverRequest topk;
  topk.kind = core::SolverRequest::Kind::kSolveJraTopK;
  topk.solver = "bba";
  topk.paper = 2;
  topk.k = 3;
  auto groups = registry.Run(topk, instance);
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  EXPECT_EQ(groups->jra.size(), 3u);
  EXPECT_FALSE(groups->assignment.has_value());

  core::SolverRequest jra;
  jra.kind = core::SolverRequest::Kind::kSolveJra;
  jra.solver = "bfs";
  jra.paper = 2;
  auto single = registry.Run(jra, instance);
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  ASSERT_EQ(single->jra.size(), 1u);
  EXPECT_NEAR(single->jra[0].score, groups->jra[0].score, 1e-9);
}

TEST(SolverRunOptionsTest, RestrictedToFiltersUndeclaredKeys) {
  core::SolverRunOptions options;
  options.time_limit_seconds = 2.5;
  options.seed = 99;
  options.extra["sra_omega"] = "4";
  options.extra["update_refine"] = "sra";
  std::vector<core::KnobSpec> specs;
  core::KnobSpec omega;
  omega.name = "sra_omega";
  specs.push_back(omega);
  const core::SolverRunOptions narrowed = options.RestrictedTo(specs);
  EXPECT_EQ(narrowed.time_limit_seconds, 2.5);
  EXPECT_EQ(narrowed.seed, 99u);
  EXPECT_EQ(narrowed.extra.size(), 1u);
  EXPECT_EQ(narrowed.extra.count("sra_omega"), 1u);
  EXPECT_EQ(narrowed.extra.count("update_refine"), 0u);
}

TEST(SolverRunOptionsTest, TypedExtraAccessors) {
  core::SolverRunOptions options;
  EXPECT_EQ(*options.ExtraInt("absent", 7), 7);
  EXPECT_EQ(*options.ExtraDouble("absent", 0.5), 0.5);
  EXPECT_EQ(options.ExtraString("absent", "x"), "x");
  EXPECT_EQ(*options.ExtraBool("absent", true), true);
  for (const char* yes : {"true", "1", "on"}) {
    options.extra["flag"] = yes;
    EXPECT_TRUE(*options.ExtraBool("flag", false)) << yes;
  }
  for (const char* no : {"false", "0", "off"}) {
    options.extra["flag"] = no;
    EXPECT_FALSE(*options.ExtraBool("flag", true)) << no;
  }
  options.extra["flag"] = "yes";
  EXPECT_EQ(options.ExtraBool("flag", false).status().code(),
            StatusCode::kInvalidArgument);
  options.extra["a"] = "42";
  options.extra["b"] = "2.25";
  options.extra["c"] = "text";
  EXPECT_EQ(*options.ExtraInt("a", 0), 42);
  EXPECT_EQ(*options.ExtraDouble("b", 0.0), 2.25);
  EXPECT_EQ(options.ExtraString("c", ""), "text");
  EXPECT_EQ(options.ExtraInt("c", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(options.ExtraDouble("c", 0.0).status().code(),
            StatusCode::kInvalidArgument);
  // Values outside int range are rejected, not truncated.
  options.extra["d"] = "4294967297";
  EXPECT_EQ(options.ExtraInt("d", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, TimeLimitIsThreadedThrough) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  core::SolverRunOptions options;
  options.time_limit_seconds = 5.0;  // generous; must still terminate fast
  auto assignment = registry.SolveCra("sdga-sra", instance, options);
  ASSERT_TRUE(assignment.ok()) << assignment.status().ToString();
  EXPECT_TRUE(assignment->ValidateComplete().ok());
}

TEST(SolverRegistryTest, ConstructiveSolversHonorTinyTimeLimits) {
  // Pins the once-missing contract: ilp (transportation substrate) and rrap
  // (per-reviewer knapsacks) abort with kResourceExhausted instead of
  // running to completion when the budget is already spent.
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  core::SolverRunOptions options;
  options.time_limit_seconds = 1e-9;  // expired by the first poll
  for (const char* name : {"ilp", "rrap", "sdga", "greedy"}) {
    SCOPED_TRACE(name);
    auto result = registry.SolveCra(name, instance, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(SolverRegistryTest, PreCancelledTokenAbortsEverySolver) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  auto source = MakeCancelSource();
  source->store(true);
  core::SolverRunOptions options;
  options.cancel = source;
  for (const char* name : {"greedy", "brgg", "sdga", "sm", "ilp", "rrap"}) {
    SCOPED_TRACE(name);
    auto result = registry.SolveCra(name, instance, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  for (const char* name : {"bba", "bfs", "jra-ilp", "jra-cp"}) {
    SCOPED_TRACE(name);
    auto result = registry.SolveJra(name, instance, 0, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  // Refiners follow the anytime contract for deadlines but still abort on
  // an explicit cancel — the caller said the result is no longer wanted.
  auto initial = registry.SolveCra("sdga", instance);
  ASSERT_TRUE(initial.ok());
  for (const char* name : {"sra", "ls"}) {
    SCOPED_TRACE(name);
    auto result = registry.RefineCra(name, instance, *initial, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
}

TEST(SolverProgressTest, SolversEmitMonotoneFrames) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  // Every anytime pipeline must emit at least one frame, with best scores
  // that never regress — the property `watch` clients rely on to render a
  // live convergence curve.
  for (const char* name : {"sdga", "sdga-sra", "sdga-ls", "ilp"}) {
    SCOPED_TRACE(name);
    std::vector<core::ProgressFrame> frames;
    core::SolverRunOptions options;
    options.progress = [&frames](const core::ProgressFrame& frame) {
      frames.push_back(frame);
    };
    auto result = registry.SolveCra(name, instance, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_FALSE(frames.empty());
    for (size_t i = 1; i < frames.size(); ++i) {
      EXPECT_GE(frames[i].best_score, frames[i - 1].best_score)
          << "frame " << i << " regressed";
    }
    // The stream's last best matches the returned assignment — a frame
    // is a faithful preview of the result, not an estimate.
    EXPECT_DOUBLE_EQ(frames.back().best_score, result->TotalScore());
  }
}

TEST(SolverProgressTest, FrameStreamIsDeterministicForAFixedSeed) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  auto run = [&] {
    std::vector<std::pair<int64_t, double>> frames;
    core::SolverRunOptions options;
    options.seed = 99;
    options.progress = [&frames](const core::ProgressFrame& frame) {
      frames.emplace_back(frame.round, frame.best_score);
    };
    auto result = registry.SolveCra("sdga-sra", instance, options);
    WGRAP_CHECK(result.ok());
    return frames;
  };
  EXPECT_EQ(run(), run());
}

TEST(SolverProgressTest, CancelDuringSraStopsTheFrameStream) {
  const auto& registry = core::SolverRegistry::Default();
  const core::Instance instance = TinyInstance();
  auto initial = registry.SolveCra("sdga", instance);
  ASSERT_TRUE(initial.ok());
  // Cancel from inside the progress callback: the first SRA frame flips
  // the token, so the refiner must abort at its next poll site without
  // emitting a meaningfully longer stream.
  auto source = MakeCancelSource();
  int frames_seen = 0;
  core::SolverRunOptions options;
  options.cancel = source;
  options.progress = [&](const core::ProgressFrame&) {
    ++frames_seen;
    source->store(true);
  };
  auto result = registry.RefineCra("sra", instance, *initial, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_GE(frames_seen, 1);
}

}  // namespace
}  // namespace wgrap
