// Retrieval-based RAP baseline tests: per-reviewer top-δr retrieval,
// the imbalance the paper's Fig. 1(a) illustrates, and COI handling.
#include <gtest/gtest.h>

#include "core/cra.h"
#include "data/synthetic_dblp.h"

namespace wgrap::core {
namespace {

TEST(RrapTest, EveryReviewerTakesTopWorkloadPapers) {
  data::RapDataset dataset;
  dataset.num_topics = 2;
  dataset.reviewers.push_back({"r0", {1.0, 0.0}, 1});
  dataset.reviewers.push_back({"r1", {0.0, 1.0}, 1});
  dataset.papers.push_back({"pa", {1.0, 0.0}, "V"});   // loved by r0
  dataset.papers.push_back({"pb", {0.9, 0.1}, "V"});   // also r0-ish
  dataset.papers.push_back({"pc", {0.0, 1.0}, "V"});   // loved by r1
  InstanceParams params;
  params.group_size = 1;
  params.reviewer_workload = 2;
  auto instance = Instance::FromDataset(dataset, params);
  ASSERT_TRUE(instance.ok());
  auto solved = SolveCraRrap(*instance);
  ASSERT_TRUE(solved.ok());
  const RrapResult& result = *solved;
  // r0 retrieves pa and pb; r1 retrieves pc and (tied low) one more.
  ASSERT_EQ(result.reviewers_of_paper.size(), 3u);
  EXPECT_EQ(result.reviewers_of_paper[0], (std::vector<int>{0}));
  EXPECT_NE(std::find(result.reviewers_of_paper[2].begin(),
                      result.reviewers_of_paper[2].end(), 1),
            result.reviewers_of_paper[2].end());
}

TEST(RrapTest, ProducesImbalanceThatWgrapAvoids) {
  // Many similar papers + one broad reviewer: RRAP piles reviewers on the
  // popular papers and leaves others with fewer than δp reviewers; the
  // WGRAP solvers never do (Fig. 1(a) motivation).
  data::SyntheticDblpConfig config;
  config.num_topics = 8;
  config.seed = 42;
  auto dataset = data::GenerateReviewerPool(12, 18, config);
  ASSERT_TRUE(dataset.ok());
  InstanceParams params;
  params.group_size = 2;
  auto instance = Instance::FromDataset(*dataset, params);
  ASSERT_TRUE(instance.ok());

  auto solved = SolveCraRrap(*instance);
  ASSERT_TRUE(solved.ok());
  const RrapResult& rrap = *solved;
  auto sdga = SolveCraSdga(*instance);
  ASSERT_TRUE(sdga.ok());
  // RRAP is imbalanced on this data; SDGA satisfies the constraint exactly.
  EXPECT_GT(rrap.under_reviewed_papers, 0);
  EXPECT_GT(rrap.max_reviewers_per_paper, instance->group_size());
  for (int p = 0; p < instance->num_papers(); ++p) {
    EXPECT_EQ(static_cast<int>(sdga->GroupFor(p).size()),
              instance->group_size());
  }
}

TEST(RrapTest, RespectsConflicts) {
  data::SyntheticDblpConfig config;
  config.num_topics = 6;
  auto dataset = data::GenerateReviewerPool(6, 8, config);
  ASSERT_TRUE(dataset.ok());
  InstanceParams params;
  params.group_size = 2;
  auto instance = Instance::FromDataset(*dataset, params);
  ASSERT_TRUE(instance.ok());
  for (int p = 0; p < 8; ++p) instance->AddConflict(0, p);
  auto solved = SolveCraRrap(*instance);
  ASSERT_TRUE(solved.ok());
  const RrapResult& result = *solved;
  for (const auto& reviewers : result.reviewers_of_paper) {
    for (int r : reviewers) EXPECT_NE(r, 0);
  }
}

TEST(RrapTest, PairwiseScoreMatchesManualSum) {
  data::SyntheticDblpConfig config;
  config.num_topics = 6;
  config.seed = 9;
  auto dataset = data::GenerateReviewerPool(5, 6, config);
  ASSERT_TRUE(dataset.ok());
  InstanceParams params;
  params.group_size = 1;
  auto instance = Instance::FromDataset(*dataset, params);
  ASSERT_TRUE(instance.ok());
  auto solved = SolveCraRrap(*instance);
  ASSERT_TRUE(solved.ok());
  const RrapResult& result = *solved;
  double manual = 0.0;
  for (int p = 0; p < instance->num_papers(); ++p) {
    for (int r : result.reviewers_of_paper[p]) {
      manual += instance->PairScore(r, p);
    }
  }
  EXPECT_NEAR(result.pairwise_score, manual, 1e-12);
}

}  // namespace
}  // namespace wgrap::core
