// Hungarian algorithm tests: hand-checked instances, property checks
// against brute-force enumeration on random matrices, rectangular cases,
// forbidden pairs and infeasibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "la/hungarian.h"

namespace wgrap::la {
namespace {

// Exact min-cost assignment by permutation enumeration (rows <= cols).
double BruteForceMinCost(const Matrix& cost) {
  const int n = cost.rows();
  const int m = cost.cols();
  std::vector<int> cols(m);
  std::iota(cols.begin(), cols.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  // Enumerate all m!/(m-n)! injections via permutations of columns.
  std::sort(cols.begin(), cols.end());
  do {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += cost.At(i, cols[i]);
    best = std::min(best, total);
  } while (std::next_permutation(cols.begin(), cols.end()));
  return best;
}

TEST(HungarianTest, TrivialSingleCell) {
  Matrix cost(1, 1, 3.5);
  auto result = SolveMinCostAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_to_col[0], 0);
  EXPECT_DOUBLE_EQ(result->objective, 3.5);
}

TEST(HungarianTest, ClassicThreeByThree) {
  Matrix cost(3, 3);
  const double values[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) cost.At(i, j) = values[i][j];
  }
  auto result = SolveMinCostAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->objective, 5.0);  // 1 + 2 + 2
}

TEST(HungarianTest, RectangularUsesBestColumns) {
  Matrix cost(2, 4, 10.0);
  cost.At(0, 3) = 1.0;
  cost.At(1, 2) = 2.0;
  auto result = SolveMinCostAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->objective, 3.0);
  EXPECT_EQ(result->row_to_col[0], 3);
  EXPECT_EQ(result->row_to_col[1], 2);
}

TEST(HungarianTest, RowsExceedColsRejected) {
  Matrix cost(3, 2, 1.0);
  auto result = SolveMinCostAssignment(cost);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(HungarianTest, ForbiddenPairAvoided) {
  Matrix cost(2, 2, 1.0);
  cost.At(0, 0) = kForbidden;
  auto result = SolveMinCostAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_to_col[0], 1);
  EXPECT_EQ(result->row_to_col[1], 0);
}

TEST(HungarianTest, AllForbiddenRowInfeasible) {
  Matrix cost(2, 2, kForbidden);
  cost.At(1, 0) = 1.0;
  cost.At(1, 1) = 1.0;
  auto result = SolveMinCostAssignment(cost);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(HungarianTest, MaxProfitNegatesCorrectly) {
  Matrix profit(2, 2);
  profit.At(0, 0) = 5.0;
  profit.At(0, 1) = 1.0;
  profit.At(1, 0) = 2.0;
  profit.At(1, 1) = 3.0;
  auto result = SolveMaxProfitAssignment(profit);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->objective, 8.0);  // 5 + 3
}

TEST(HungarianTest, NegativeCostsSupported) {
  Matrix cost(2, 2);
  cost.At(0, 0) = -4.0;
  cost.At(0, 1) = 0.0;
  cost.At(1, 0) = 0.0;
  cost.At(1, 1) = -6.0;
  auto result = SolveMinCostAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->objective, -10.0);
}

class HungarianRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(HungarianRandomTest, MatchesBruteForceSquare) {
  Rng rng(1000 + GetParam());
  const int n = 2 + GetParam() % 5;  // 2..6
  Matrix cost(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) cost.At(i, j) = rng.NextDouble() * 10.0;
  }
  auto result = SolveMinCostAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective, BruteForceMinCost(cost), 1e-9);
  // Assignment must be a valid injection.
  std::vector<char> used(n, 0);
  for (int i = 0; i < n; ++i) {
    const int j = result->row_to_col[i];
    ASSERT_GE(j, 0);
    ASSERT_LT(j, n);
    EXPECT_FALSE(used[j]);
    used[j] = 1;
  }
}

TEST_P(HungarianRandomTest, MatchesBruteForceRectangular) {
  Rng rng(2000 + GetParam());
  const int n = 2 + GetParam() % 3;      // 2..4 rows
  const int m = n + 1 + GetParam() % 3;  // up to n+3 cols
  Matrix cost(n, m);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) cost.At(i, j) = rng.NextDouble() * 10.0;
  }
  auto result = SolveMinCostAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective, BruteForceMinCost(cost), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, HungarianRandomTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace wgrap::la
