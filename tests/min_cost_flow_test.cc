// Min-cost max-flow tests: hand-built networks, negative edge costs
// (Bellman–Ford priming), flow caps and per-edge flow queries.
#include <gtest/gtest.h>

#include "la/min_cost_flow.h"

namespace wgrap::la {
namespace {

TEST(MinCostFlowTest, SingleEdge) {
  MinCostFlow flow(2);
  const int e = flow.AddEdge(0, 1, 5, 3);
  auto result = flow.Solve(0, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flow, 5);
  EXPECT_EQ(result->cost, 15);
  EXPECT_EQ(flow.FlowOnEdge(e), 5);
}

TEST(MinCostFlowTest, PrefersCheaperPath) {
  // 0 -> 1 -> 3 (cost 2) vs 0 -> 2 -> 3 (cost 10), capacity 1 each.
  MinCostFlow flow(4);
  flow.AddEdge(0, 1, 1, 1);
  flow.AddEdge(1, 3, 1, 1);
  flow.AddEdge(0, 2, 1, 5);
  flow.AddEdge(2, 3, 1, 5);
  auto result = flow.Solve(0, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flow, 2);
  EXPECT_EQ(result->cost, 12);
}

TEST(MinCostFlowTest, MaxFlowCapRespected) {
  MinCostFlow flow(2);
  flow.AddEdge(0, 1, 10, 1);
  auto result = flow.Solve(0, 1, /*max_flow=*/4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flow, 4);
  EXPECT_EQ(result->cost, 4);
}

TEST(MinCostFlowTest, NegativeCostsHandled) {
  // The negative edge must be used despite a "free" alternative.
  MinCostFlow flow(3);
  flow.AddEdge(0, 1, 1, -5);
  flow.AddEdge(1, 2, 1, 1);
  flow.AddEdge(0, 2, 1, 0);
  auto result = flow.Solve(0, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flow, 2);
  EXPECT_EQ(result->cost, -4);
}

TEST(MinCostFlowTest, DisconnectedGivesZeroFlow) {
  MinCostFlow flow(3);
  flow.AddEdge(0, 1, 1, 1);
  auto result = flow.Solve(0, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flow, 0);
  EXPECT_EQ(result->cost, 0);
}

TEST(MinCostFlowTest, SourceEqualsSinkRejected) {
  MinCostFlow flow(2);
  auto result = flow.Solve(1, 1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(MinCostFlowTest, ResidualReroutingFindsOptimum) {
  // Classic case where a later augmentation must push flow back over the
  // reverse edge of an earlier path.
  MinCostFlow flow(4);
  flow.AddEdge(0, 1, 1, 1);
  flow.AddEdge(0, 2, 1, 4);
  flow.AddEdge(1, 2, 1, 1);
  flow.AddEdge(1, 3, 1, 5);
  flow.AddEdge(2, 3, 2, 1);
  auto result = flow.Solve(0, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flow, 2);
  // Optimal: 0-1-2-3 (cost 3) + 0-2-3 (cost 5) = 8.
  EXPECT_EQ(result->cost, 8);
}

TEST(MinCostFlowTest, BipartiteAssignmentOptimal) {
  // 2 tasks x 2 agents as a flow problem; optimal matching cost = 3.
  // profits encoded as costs: t0-a0=1, t0-a1=4, t1-a0=5, t1-a1=2.
  MinCostFlow flow(6);  // 0=s, 1-2 tasks, 3-4 agents, 5=t
  flow.AddEdge(0, 1, 1, 0);
  flow.AddEdge(0, 2, 1, 0);
  const int e00 = flow.AddEdge(1, 3, 1, 1);
  flow.AddEdge(1, 4, 1, 4);
  flow.AddEdge(2, 3, 1, 5);
  const int e11 = flow.AddEdge(2, 4, 1, 2);
  flow.AddEdge(3, 5, 1, 0);
  flow.AddEdge(4, 5, 1, 0);
  auto result = flow.Solve(0, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flow, 2);
  EXPECT_EQ(result->cost, 3);
  EXPECT_EQ(flow.FlowOnEdge(e00), 1);
  EXPECT_EQ(flow.FlowOnEdge(e11), 1);
}

}  // namespace
}  // namespace wgrap::la
