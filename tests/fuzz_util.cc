#include "fuzz_util.h"

#include <utility>

#include "common/matrix.h"
#include "common/rng.h"
#include "data/synthetic_dblp.h"

namespace wgrap::core {

Result<data::RapDataset> MakeFuzzDataset(const FuzzInstanceConfig& config) {
  data::SyntheticDblpConfig dblp;
  dblp.num_topics = config.num_topics;
  dblp.seed = config.seed;
  return data::GenerateReviewerPool(config.reviewers, config.papers, dblp);
}

InstanceParams MakeFuzzParams(const FuzzInstanceConfig& config) {
  InstanceParams params;
  params.group_size = config.group_size;
  params.reviewer_workload =
      config.extra_workload == 0
          ? 0
          : Instance::MinimalWorkload(config.papers, config.reviewers,
                                      config.group_size) +
                config.extra_workload;
  params.scoring = config.scoring;
  params.sparse_topics = config.sparse_topics;
  return params;
}

Status PerturbInstance(const FuzzInstanceConfig& config, Instance* instance) {
  Rng rng(config.seed ^ 0xc01);
  if (config.conflict_rate > 0) {
    for (int p = 0; p < config.papers; ++p) {
      for (int r = 0; r < config.reviewers; ++r) {
        if (rng.NextDouble() < config.conflict_rate) {
          instance->AddConflict(r, p);
        }
      }
    }
  }
  if (config.with_bids) {
    Matrix bids(config.papers, config.reviewers);
    for (int p = 0; p < config.papers; ++p) {
      for (int r = 0; r < config.reviewers; ++r) {
        bids(p, r) = rng.NextDouble();
      }
    }
    WGRAP_RETURN_IF_ERROR(
        instance->SetBids(std::move(bids), config.bid_weight));
  }
  return Status::OK();
}

Result<Instance> MakeFuzzInstance(const FuzzInstanceConfig& config) {
  auto dataset = MakeFuzzDataset(config);
  WGRAP_RETURN_IF_ERROR(dataset.status());
  auto instance = Instance::FromDataset(*dataset, MakeFuzzParams(config));
  WGRAP_RETURN_IF_ERROR(instance.status());
  WGRAP_RETURN_IF_ERROR(PerturbInstance(config, &*instance));
  return instance;
}

}  // namespace wgrap::core
