// Unit tests for src/common: Status/Result, Rng, Matrix, string utilities,
// TablePrinter and Stopwatch/Deadline.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace wgrap {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kInfeasible,
        StatusCode::kUnbounded, StatusCode::kNumericalError,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Status FailingHelper() { return Status::Internal("boom"); }
Status PropagatingHelper() {
  WGRAP_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(PropagatingHelper().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntCoversRangeInclusive) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextInt(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(99);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(5);
  for (double shape : {0.3, 1.0, 4.5}) {
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.NextGamma(shape);
    EXPECT_NEAR(sum / n, shape, shape * 0.05) << "shape=" << shape;
  }
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(11);
  const auto v = rng.NextDirichlet(30, 0.1);
  double total = 0.0;
  for (double x : v) {
    EXPECT_GE(x, 0.0);
    total += x;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RngTest, SampleDiscreteRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(RngTest, SampleDiscreteZeroMassReturnsMinusOne) {
  Rng rng(13);
  EXPECT_EQ(rng.SampleDiscrete({0.0, 0.0}), -1);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    auto picks = rng.SampleWithoutReplacement(20, 7);
    std::set<int> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 7u);
    for (int p : picks) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, 20);
    }
  }
}

TEST(MatrixTest, BasicAccessAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m.Sum(), 9.0);
  m.At(1, 2) = 4.0;
  EXPECT_DOUBLE_EQ(m.At(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.Max(), 4.0);
  EXPECT_DOUBLE_EQ(m.RowSum(1), 7.0);
}

TEST(MatrixTest, NormalizeRowsHandlesZeroMass) {
  Matrix m(2, 4, 0.0);
  m.At(0, 1) = 2.0;
  m.NormalizeRows();
  EXPECT_DOUBLE_EQ(m.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.25);  // zero row becomes uniform
}

TEST(MatrixTest, RowPointerIsContiguous) {
  Matrix m(3, 2);
  m.At(1, 0) = 5.0;
  m.At(1, 1) = 6.0;
  const double* row = m.Row(1);
  EXPECT_DOUBLE_EQ(row[0], 5.0);
  EXPECT_DOUBLE_EQ(row[1], 6.0);
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
}

TEST(StringUtilTest, StrSplitKeepsEmptyFields) {
  const auto parts = StrSplit("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtilTest, StrJoinRoundTrip) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "+"), "a+b+c");
  EXPECT_EQ(StrJoin({}, "+"), "");
}

TEST(StringUtilTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(0.004), "4 ms");
  EXPECT_EQ(HumanSeconds(2.2), "2.20 s");
  EXPECT_EQ(HumanSeconds(45.6 * 60), "45.6 min");
  EXPECT_EQ(HumanSeconds(5.1 * 3600), "5.1 h");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "v"});
  table.AddRow({"long-name", "1"});
  table.AddRow({"x", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| long-name | 1  |"), std::string::npos);
  EXPECT_NE(out.find("| x         | 22 |"), std::string::npos);
}

TEST(StopwatchTest, DeadlineSemantics) {
  Deadline unlimited;
  EXPECT_FALSE(unlimited.HasLimit());
  EXPECT_FALSE(unlimited.Expired());
  Deadline tiny(1e-9);
  EXPECT_TRUE(tiny.HasLimit());
  // Busy-wait a moment to let it expire.
  Stopwatch w;
  while (w.ElapsedSeconds() < 1e-4) {
  }
  EXPECT_TRUE(tiny.Expired());
}

}  // namespace
}  // namespace wgrap
