// Tests for the sparse topic subsystem (src/sparse/): CSR construction,
// bit-exact dense↔sparse kernel equivalence for all four scoring functions
// of Table 5, and the end-to-end property that an instance carrying sparse
// views produces *identical* scores and assignments through every solver
// path. Equality here is EXPECT_EQ on doubles on purpose — the contract is
// bit-identical, not approximately equal.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/registry.h"
#include "core/wgrap.h"
#include "data/synthetic_dblp.h"
#include "sparse/sparse_matrix.h"
#include "sparse/sparse_scoring.h"
#include "sparse/topic_index.h"

namespace wgrap {
namespace {

using core::ScoringFunction;

constexpr ScoringFunction kAllScorings[] = {
    ScoringFunction::kWeightedCoverage, ScoringFunction::kReviewerCoverage,
    ScoringFunction::kPaperCoverage, ScoringFunction::kDotProduct};

// A length-T vector with `nnz` strictly positive entries at random topics.
std::vector<double> RandomSparseVector(int num_topics, int nnz, Rng* rng) {
  std::vector<double> v(num_topics, 0.0);
  for (int k = 0; k < nnz; ++k) {
    int t;
    do {
      t = static_cast<int>(rng->NextBounded(num_topics));
    } while (v[t] > 0.0);
    v[t] = 0.05 + rng->NextDouble();
  }
  return v;
}

TEST(SparseTopicMatrixTest, FromMatrixCompressesAndRoundTrips) {
  Matrix dense(3, 5, 0.0);
  dense(0, 1) = 0.5;
  dense(0, 4) = 0.25;
  dense(2, 0) = 1.5;  // row 1 stays empty
  const auto csr = sparse::SparseTopicMatrix::FromMatrix(dense);
  EXPECT_EQ(csr.rows(), 3);
  EXPECT_EQ(csr.cols(), 5);
  EXPECT_EQ(csr.nnz(), 3);
  EXPECT_EQ(csr.RowNnz(0), 2);
  EXPECT_EQ(csr.RowNnz(1), 0);
  EXPECT_EQ(csr.RowNnz(2), 1);
  EXPECT_DOUBLE_EQ(csr.Density(), 3.0 / 15.0);
  const sparse::SparseVector row0 = csr.Row(0);
  ASSERT_EQ(row0.nnz, 2);
  EXPECT_EQ(row0.ids[0], 1);  // sorted ascending
  EXPECT_EQ(row0.ids[1], 4);
  EXPECT_EQ(row0.values[0], 0.5);
  EXPECT_EQ(row0.dim, 5);

  // The CSC inverted index is the exact transpose: same entries, reached
  // by column, whichever representation it was built from.
  for (const sparse::TopicIndex& index :
       {sparse::TopicIndex::FromMatrix(dense),
        sparse::TopicIndex::FromSparse(csr)}) {
    EXPECT_EQ(index.num_rows(), 3);
    EXPECT_EQ(index.num_topics(), 5);
    EXPECT_EQ(index.nnz(), 3);
    for (int t = 0; t < 5; ++t) {
      const sparse::SparseVector column = index.Column(t);
      EXPECT_EQ(column.dim, 3);
      int expected_degree = 0;
      for (int r = 0; r < 3; ++r) {
        if (dense(r, t) > 0.0) ++expected_degree;
      }
      ASSERT_EQ(column.nnz, expected_degree) << "topic " << t;
      for (int k = 0; k < column.nnz; ++k) {
        if (k > 0) EXPECT_LT(column.ids[k - 1], column.ids[k]);  // sorted
        EXPECT_EQ(column.values[k], dense(column.ids[k], t));
      }
    }
  }
  const Matrix round_trip = csr.ToMatrix();
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 5; ++c) EXPECT_EQ(round_trip(r, c), dense(r, c));
  }
}

TEST(SparseTopicMatrixTest, FromTriplesSortsAndValidates) {
  // Unsorted triples, including a zero entry that must be dropped.
  std::vector<sparse::SparseTriple> triples = {
      {1, 3, 0.2}, {0, 2, 0.7}, {1, 0, 0.1}, {0, 0, 0.0}};
  auto csr = sparse::SparseTopicMatrix::FromTriples(2, 4, triples);
  ASSERT_TRUE(csr.ok()) << csr.status().ToString();
  EXPECT_EQ(csr->nnz(), 3);
  const sparse::SparseVector row1 = csr->Row(1);
  ASSERT_EQ(row1.nnz, 2);
  EXPECT_EQ(row1.ids[0], 0);
  EXPECT_EQ(row1.ids[1], 3);
  EXPECT_EQ(row1.values[1], 0.2);

  EXPECT_EQ(sparse::SparseTopicMatrix::FromTriples(2, 4, {{2, 0, 0.1}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // row out of range
  EXPECT_EQ(sparse::SparseTopicMatrix::FromTriples(2, 4, {{0, 4, 0.1}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // topic out of range
  EXPECT_EQ(sparse::SparseTopicMatrix::FromTriples(2, 4, {{0, 1, -0.5}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // negative value
  EXPECT_EQ(sparse::SparseTopicMatrix::FromTriples(
                2, 4, {{0, 1, 0.5}, {0, 1, 0.5}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // duplicate (row, topic)
}

// ScoreSparse must equal ScoreVectors bit for bit, for every scoring
// function, across sparsity levels from near-empty to fully dense.
TEST(SparseKernelTest, PairScoreIsBitIdenticalToDense) {
  Rng rng(101);
  const int T = 40;
  for (ScoringFunction f : kAllScorings) {
    for (int trial = 0; trial < 50; ++trial) {
      const int nnz_r = 1 + static_cast<int>(rng.NextBounded(T));
      const int nnz_p = 1 + static_cast<int>(rng.NextBounded(T));
      const auto r = RandomSparseVector(T, nnz_r, &rng);
      const auto p = RandomSparseVector(T, nnz_p, &rng);
      double mass = 0.0;
      for (double x : p) mass += x;
      Matrix rm(1, T), pm(1, T);
      for (int t = 0; t < T; ++t) {
        rm(0, t) = r[t];
        pm(0, t) = p[t];
      }
      const auto rs = sparse::SparseTopicMatrix::FromMatrix(rm);
      const auto ps = sparse::SparseTopicMatrix::FromMatrix(pm);
      const double dense =
          core::ScoreVectors(f, r.data(), p.data(), T, mass);
      const double sparse_score =
          sparse::ScoreSparse(f, rs.Row(0), ps.Row(0), mass);
      EXPECT_EQ(dense, sparse_score)
          << core::ScoringFunctionName(f) << " trial " << trial;
    }
  }
}

TEST(SparseKernelTest, MarginalGainIsBitIdenticalToDense) {
  Rng rng(202);
  const int T = 40;
  for (ScoringFunction f : kAllScorings) {
    for (int trial = 0; trial < 50; ++trial) {
      const auto group = RandomSparseVector(
          T, static_cast<int>(rng.NextBounded(T + 1)), &rng);
      const auto reviewer = RandomSparseVector(
          T, 1 + static_cast<int>(rng.NextBounded(T)), &rng);
      const auto paper = RandomSparseVector(
          T, 1 + static_cast<int>(rng.NextBounded(T)), &rng);
      double mass = 0.0;
      for (double x : paper) mass += x;
      Matrix rm(1, T);
      for (int t = 0; t < T; ++t) rm(0, t) = reviewer[t];
      const auto rs = sparse::SparseTopicMatrix::FromMatrix(rm);
      const double dense = core::MarginalGainVectors(
          f, group.data(), reviewer.data(), paper.data(), T, mass);
      const double sparse_gain = sparse::MarginalGainSparse(
          f, group.data(), rs.Row(0), paper.data(), mass);
      EXPECT_EQ(dense, sparse_gain)
          << core::ScoringFunctionName(f) << " trial " << trial;
    }
  }
}

// The dense-accumulator group variant: folding δp member rows and scoring
// must match the dense element-wise max + ScoreVectors pipeline exactly.
TEST(SparseKernelTest, GroupAccumulatorIsBitIdenticalToDense) {
  Rng rng(303);
  const int T = 40;
  sparse::SparseGroupAccumulator accumulator;  // reused across trials
  for (ScoringFunction f : kAllScorings) {
    for (int trial = 0; trial < 30; ++trial) {
      const int group_size = 1 + static_cast<int>(rng.NextBounded(4));
      Matrix members(group_size, T, 0.0);
      std::vector<double> dense_max(T, 0.0);
      for (int g = 0; g < group_size; ++g) {
        const auto v = RandomSparseVector(
            T, 1 + static_cast<int>(rng.NextBounded(T)), &rng);
        for (int t = 0; t < T; ++t) {
          members(g, t) = v[t];
          dense_max[t] = std::max(dense_max[t], v[t]);
        }
      }
      const auto paper = RandomSparseVector(
          T, 1 + static_cast<int>(rng.NextBounded(T)), &rng);
      double mass = 0.0;
      for (double x : paper) mass += x;
      Matrix pm(1, T);
      for (int t = 0; t < T; ++t) pm(0, t) = paper[t];
      const auto members_csr = sparse::SparseTopicMatrix::FromMatrix(members);
      const auto paper_csr = sparse::SparseTopicMatrix::FromMatrix(pm);

      accumulator.Reset(T);
      for (int g = 0; g < group_size; ++g) {
        accumulator.Fold(members_csr.Row(g));
      }
      const double dense_score =
          core::ScoreVectors(f, dense_max.data(), paper.data(), T, mass);
      EXPECT_EQ(dense_score, accumulator.Score(f, paper_csr.Row(0), mass))
          << core::ScoringFunctionName(f) << " trial " << trial;

      // ScatterInto reproduces the dense max (over a zeroed buffer).
      std::vector<double> scattered(T, 0.0);
      accumulator.ScatterInto(scattered.data());
      for (int t = 0; t < T; ++t) EXPECT_EQ(scattered[t], dense_max[t]);
    }
  }
}

// --- end-to-end dense↔sparse equivalence -----------------------------------

core::Instance PoolInstance(int reviewers, int papers, ScoringFunction f,
                            double density, uint64_t seed, bool sparse_views) {
  data::SyntheticDblpConfig config;
  config.num_topics = 12;
  config.seed = seed;
  config.topic_density = density;
  auto dataset = data::GenerateReviewerPool(reviewers, papers, config);
  WGRAP_CHECK(dataset.ok());
  core::InstanceParams params;
  params.group_size = 3;
  params.scoring = f;
  params.sparse_topics = sparse_views;
  auto instance = core::Instance::FromDataset(*dataset, params);
  WGRAP_CHECK(instance.ok());
  // Make the dense twin dense even when CI forces WGRAP_SPARSE_TOPICS=1 —
  // the comparison below needs one genuinely dense execution.
  if (!sparse_views) instance->DropSparseTopics();
  return std::move(instance).value();
}

// The tentpole property: for every scoring function, solving on an
// instance with sparse views yields exactly the same assignment (groups
// and total score) as the dense path — across constructive solvers,
// refiners and the JRA line-up.
TEST(SparseEquivalenceTest, SolversMatchDensePathExactly) {
  const auto& registry = core::SolverRegistry::Default();
  int config_index = 0;
  for (ScoringFunction f : kAllScorings) {
    for (double density : {0.25, 0.0}) {  // sparse profiles and dense ones
      SCOPED_TRACE(core::ScoringFunctionName(f) + " density " +
                   std::to_string(density));
      const uint64_t seed = 900 + config_index++;
      const core::Instance dense =
          PoolInstance(12, 9, f, density, seed, /*sparse_views=*/false);
      const core::Instance sparse_twin =
          PoolInstance(12, 9, f, density, seed, /*sparse_views=*/true);
      ASSERT_FALSE(dense.has_sparse_topics());
      ASSERT_TRUE(sparse_twin.has_sparse_topics());

      for (const char* algo : {"greedy", "brgg", "sdga", "sdga-sra",
                               "sdga-ls", "sm", "ilp"}) {
        SCOPED_TRACE(algo);
        core::SolverRunOptions dense_options;
        core::SolverRunOptions sparse_options;
        sparse_options.extra["topics"] = "sparse";
        auto a = registry.SolveCra(algo, dense, dense_options);
        auto b = registry.SolveCra(algo, sparse_twin, sparse_options);
        ASSERT_TRUE(a.ok()) << a.status().ToString();
        ASSERT_TRUE(b.ok()) << b.status().ToString();
        EXPECT_EQ(a->TotalScore(), b->TotalScore());
        for (int p = 0; p < dense.num_papers(); ++p) {
          EXPECT_EQ(a->GroupFor(p), b->GroupFor(p)) << "paper " << p;
          EXPECT_EQ(a->PaperScore(p), b->PaperScore(p)) << "paper " << p;
        }
      }
      for (const char* algo : {"bba", "bfs", "jra-cp"}) {
        SCOPED_TRACE(algo);
        auto a = registry.SolveJra(algo, dense, /*paper=*/2);
        core::SolverRunOptions sparse_options;
        sparse_options.extra["topics"] = "sparse";
        auto b = registry.SolveJra(algo, sparse_twin, 2, sparse_options);
        ASSERT_TRUE(a.ok()) << a.status().ToString();
        ASSERT_TRUE(b.ok()) << b.status().ToString();
        EXPECT_EQ(a->score, b->score);
        EXPECT_EQ(a->group, b->group);
      }
      // Metrics path: the ideal assignment is bit-identical too.
      auto ideal_dense = core::BuildIdealAssignment(dense);
      auto ideal_sparse = core::BuildIdealAssignment(sparse_twin);
      ASSERT_TRUE(ideal_dense.ok() && ideal_sparse.ok());
      EXPECT_EQ(ideal_dense->TotalScore(), ideal_sparse->TotalScore());
    }
  }
}

TEST(SparseEquivalenceTest, PairScoreAndScoreGroupDispatchExactly) {
  const core::Instance dense = PoolInstance(
      10, 6, ScoringFunction::kWeightedCoverage, 0.3, 55, false);
  const core::Instance sparse_twin = PoolInstance(
      10, 6, ScoringFunction::kWeightedCoverage, 0.3, 55, true);
  for (int p = 0; p < dense.num_papers(); ++p) {
    for (int r = 0; r < dense.num_reviewers(); ++r) {
      EXPECT_EQ(dense.PairScore(r, p), sparse_twin.PairScore(r, p));
    }
    EXPECT_EQ(core::ScoreGroup(dense, p, {0, 3, 7}),
              core::ScoreGroup(sparse_twin, p, {0, 3, 7}));
  }
}

TEST(SparseInstanceTest, BuildAndDropSparseViews) {
  core::Instance instance = PoolInstance(
      8, 5, ScoringFunction::kWeightedCoverage, 0.0, 77, false);
  EXPECT_FALSE(instance.has_sparse_topics());
  instance.BuildSparseTopics();
  ASSERT_TRUE(instance.has_sparse_topics());
  instance.BuildSparseTopics();  // idempotent
  const sparse::SparseVector row = instance.ReviewerSparse(0);
  EXPECT_GT(row.nnz, 0);
  EXPECT_EQ(row.dim, instance.num_topics());
  // Sparse rows mirror the dense matrix exactly.
  const double* dense_row = instance.ReviewerVector(0);
  for (int k = 0; k < row.nnz; ++k) {
    EXPECT_EQ(row.values[k], dense_row[row.ids[k]]);
  }
  instance.DropSparseTopics();
  EXPECT_FALSE(instance.has_sparse_topics());
}

TEST(SparseDatasetTest, TopicDensityControlsSupport) {
  data::SyntheticDblpConfig config;
  config.num_topics = 30;
  config.seed = 3;
  config.topic_density = 0.1;
  auto dataset = data::GenerateReviewerPool(20, 15, config);
  ASSERT_TRUE(dataset.ok());
  const data::TopicDensityReport report =
      data::MeasureTopicDensity(*dataset);
  EXPECT_EQ(report.num_topics, 30);
  // ⌈0.1 · 30⌉ = 3 nonzeros per row, exactly.
  EXPECT_DOUBLE_EQ(report.reviewer_avg_nnz, 3.0);
  EXPECT_DOUBLE_EQ(report.paper_avg_nnz, 3.0);
  ASSERT_TRUE(dataset->Validate().ok());

  config.topic_density = 0.0;  // legacy dense draws
  auto dense_dataset = data::GenerateReviewerPool(20, 15, config);
  ASSERT_TRUE(dense_dataset.ok());
  const data::TopicDensityReport dense_report =
      data::MeasureTopicDensity(*dense_dataset);
  EXPECT_GT(dense_report.reviewer_avg_nnz, 20.0);

  config.topic_density = 1.5;  // out of range
  EXPECT_EQ(data::GenerateReviewerPool(20, 15, config).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace wgrap
