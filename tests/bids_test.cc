// Bid-extension tests (Sec. 6 future work): validation, zero-weight
// equivalence, bid-driven tie-breaking, guarantee preservation (the bid
// term is modular), and solver feasibility with bids installed.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cra.h"
#include "core/metrics.h"
#include "data/synthetic_dblp.h"

namespace wgrap::core {
namespace {

Instance PoolInstance(int reviewers, int papers, int group_size,
                      uint64_t seed) {
  data::SyntheticDblpConfig config;
  config.num_topics = 8;
  config.seed = seed;
  auto dataset = data::GenerateReviewerPool(reviewers, papers, config);
  EXPECT_TRUE(dataset.ok());
  InstanceParams params;
  params.group_size = group_size;
  auto instance = Instance::FromDataset(*dataset, params);
  EXPECT_TRUE(instance.ok());
  return std::move(instance).value();
}

Matrix RandomBids(int papers, int reviewers, uint64_t seed) {
  Rng rng(seed);
  Matrix bids(papers, reviewers);
  for (int p = 0; p < papers; ++p) {
    for (int r = 0; r < reviewers; ++r) bids(p, r) = rng.NextDouble();
  }
  return bids;
}

TEST(BidsTest, ValidationRejectsBadInput) {
  Instance instance = PoolInstance(6, 4, 2, 1);
  EXPECT_FALSE(instance.SetBids(Matrix(3, 6), 0.5).ok());   // wrong shape
  EXPECT_FALSE(instance.SetBids(Matrix(4, 6), -0.1).ok());  // negative w
  Matrix bad(4, 6, 1.5);                                    // out of [0,1]
  EXPECT_FALSE(instance.SetBids(std::move(bad), 0.5).ok());
  EXPECT_TRUE(instance.SetBids(Matrix(4, 6, 0.5), 0.5).ok());
  EXPECT_TRUE(instance.has_bids());
}

TEST(BidsTest, ZeroWeightBehavesAsNoBids) {
  Instance instance = PoolInstance(8, 6, 2, 2);
  auto baseline = SolveCraSdga(instance);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(instance.SetBids(RandomBids(6, 8, 3), 0.0).ok());
  EXPECT_FALSE(instance.has_bids());
  auto with_zero = SolveCraSdga(instance);
  ASSERT_TRUE(with_zero.ok());
  EXPECT_DOUBLE_EQ(baseline->TotalScore(), with_zero->TotalScore());
}

TEST(BidsTest, BidBonusShapesPairUtility) {
  Instance instance = PoolInstance(5, 3, 2, 4);
  Matrix bids(3, 5, 0.0);
  bids(0, 2) = 1.0;
  ASSERT_TRUE(instance.SetBids(std::move(bids), 0.4).ok());
  EXPECT_NEAR(instance.BidBonus(2, 0), 0.4 * 1.0 / 2, 1e-12);
  EXPECT_NEAR(instance.BidBonus(2, 1), 0.0, 1e-12);
  EXPECT_NEAR(instance.PairUtility(2, 0),
              instance.PairScore(2, 0) + 0.2, 1e-12);
}

TEST(BidsTest, MarginalGainIncludesBonus) {
  Instance instance = PoolInstance(5, 3, 2, 5);
  Matrix bids(3, 5, 0.0);
  bids(1, 0) = 1.0;
  ASSERT_TRUE(instance.SetBids(std::move(bids), 1.0).ok());
  Assignment assignment(&instance);
  const double gain = assignment.MarginalGain(1, 0);
  EXPECT_NEAR(gain, instance.PairScore(0, 1) + 0.5, 1e-12);
  // Score bookkeeping stays consistent through add/remove.
  ASSERT_TRUE(assignment.Add(1, 0).ok());
  EXPECT_NEAR(assignment.PaperScore(1), gain, 1e-12);
  ASSERT_TRUE(assignment.Remove(1, 0).ok());
  EXPECT_NEAR(assignment.PaperScore(1), 0.0, 1e-12);
}

TEST(BidsTest, TieBrokenTowardsBidder) {
  // Two identical reviewers; only one bids. Every δp=1 assignment should
  // use the bidder for the paper with the bid.
  data::RapDataset dataset;
  dataset.num_topics = 2;
  dataset.reviewers.push_back({"no-bid", {0.5, 0.5}, 1});
  dataset.reviewers.push_back({"bidder", {0.5, 0.5}, 1});
  dataset.papers.push_back({"p", {0.5, 0.5}, "V"});
  InstanceParams params;
  params.group_size = 1;
  params.reviewer_workload = 1;
  auto instance = Instance::FromDataset(dataset, params);
  ASSERT_TRUE(instance.ok());
  Matrix bids(1, 2, 0.0);
  bids(0, 1) = 1.0;
  ASSERT_TRUE(instance->SetBids(std::move(bids), 0.3).ok());
  auto greedy = SolveCraGreedy(*instance);
  auto sdga = SolveCraSdga(*instance);
  ASSERT_TRUE(greedy.ok() && sdga.ok());
  EXPECT_EQ(greedy->GroupFor(0)[0], 1);
  EXPECT_EQ(sdga->GroupFor(0)[0], 1);
}

TEST(BidsTest, ObjectiveStaysSubmodularUnderBids) {
  // Diminishing returns must survive the modular bid term.
  Instance instance = PoolInstance(8, 5, 3, 6);
  ASSERT_TRUE(instance.SetBids(RandomBids(5, 8, 7), 0.5).ok());
  Assignment small(&instance);
  Assignment large(&instance);
  ASSERT_TRUE(large.Add(0, 1).ok());
  for (int r : {2, 3, 4, 5}) {
    const double gain_small = small.MarginalGain(0, r);
    const double gain_large = large.MarginalGain(0, r);
    EXPECT_GE(gain_small, gain_large - 1e-12) << "reviewer " << r;
  }
}

TEST(BidsTest, AllSolversFeasibleWithBids) {
  Instance instance = PoolInstance(10, 8, 3, 8);
  ASSERT_TRUE(instance.SetBids(RandomBids(8, 10, 9), 0.5).ok());
  auto sm = SolveCraStableMatching(instance);
  auto ilp = SolveCraIlpArap(instance);
  auto brgg = SolveCraBrgg(instance);
  auto greedy = SolveCraGreedy(instance);
  SraOptions sra;
  sra.max_iterations = 20;
  auto sdga_sra = SolveCraSdgaSra(instance, {}, sra);
  for (const auto* result : {&sm, &ilp, &brgg, &greedy, &sdga_sra}) {
    ASSERT_TRUE(result->ok()) << result->status().ToString();
    EXPECT_TRUE((*result)->ValidateComplete().ok());
  }
}

TEST(BidsTest, HigherWeightShiftsAssignmentTowardsBids) {
  Instance instance = PoolInstance(10, 8, 2, 10);
  const Matrix bids = RandomBids(8, 10, 11);
  auto bid_mass = [&](const Assignment& assignment) {
    double total = 0.0;
    for (int p = 0; p < 8; ++p) {
      for (int r : assignment.GroupFor(p)) total += bids(p, r);
    }
    return total;
  };
  Matrix copy1 = bids, copy2 = bids;
  ASSERT_TRUE(instance.SetBids(std::move(copy1), 0.01).ok());
  auto low = SolveCraGreedy(instance);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(instance.SetBids(std::move(copy2), 5.0).ok());
  auto high = SolveCraGreedy(instance);
  ASSERT_TRUE(high.ok());
  EXPECT_GE(bid_mass(*high), bid_mass(*low) - 1e-9);
}

}  // namespace
}  // namespace wgrap::core
