// Post-hoc maintenance tests: single-paper reassignment and late-COI
// repair keep the assignment feasible and never leave a conflicted pair.
#include <gtest/gtest.h>

#include "core/cra.h"
#include "core/reassign.h"
#include "data/synthetic_dblp.h"

namespace wgrap::core {
namespace {

Instance PoolInstance(int reviewers, int papers, int group_size,
                      uint64_t seed) {
  data::SyntheticDblpConfig config;
  config.num_topics = 8;
  config.seed = seed;
  auto dataset = data::GenerateReviewerPool(reviewers, papers, config);
  EXPECT_TRUE(dataset.ok());
  InstanceParams params;
  params.group_size = group_size;
  auto instance = Instance::FromDataset(*dataset, params);
  EXPECT_TRUE(instance.ok());
  return std::move(instance).value();
}

TEST(ReassignTest, PaperStaysCompleteAndOthersIntact) {
  Instance instance = PoolInstance(10, 8, 3, 401);
  auto solved = SolveCraSdga(instance);
  ASSERT_TRUE(solved.ok());
  Assignment assignment = *solved;
  std::vector<std::vector<int>> others_before;
  for (int p = 1; p < instance.num_papers(); ++p) {
    others_before.push_back(assignment.GroupFor(p));
  }
  ASSERT_TRUE(ReassignPaper(instance, 0, &assignment).ok());
  EXPECT_TRUE(assignment.ValidateComplete().ok());
  // With spare capacity available the refill should not need swaps, so
  // other papers are untouched.
  int changed = 0;
  for (int p = 1; p < instance.num_papers(); ++p) {
    changed += assignment.GroupFor(p) != others_before[p - 1];
  }
  EXPECT_LE(changed, 1);  // at most one donor paper when a swap was needed
}

TEST(ReassignTest, RefillIsGreedyBest) {
  // Start from a deliberately bad group for paper 0; reassignment should
  // not make it worse than before.
  Instance instance = PoolInstance(10, 6, 2, 402);
  auto solved = SolveCraGreedy(instance);
  ASSERT_TRUE(solved.ok());
  Assignment assignment = *solved;
  const double before = assignment.PaperScore(0);
  ASSERT_TRUE(ReassignPaper(instance, 0, &assignment).ok());
  EXPECT_GE(assignment.PaperScore(0), before - 1e-9);
  EXPECT_TRUE(assignment.ValidateComplete().ok());
}

TEST(ReassignTest, OutOfRangeRejected) {
  Instance instance = PoolInstance(6, 4, 2, 403);
  auto solved = SolveCraSdga(instance);
  ASSERT_TRUE(solved.ok());
  Assignment assignment = *solved;
  EXPECT_EQ(ReassignPaper(instance, 99, &assignment).code(),
            StatusCode::kOutOfRange);
}

TEST(LateConflictTest, AssignedPairIsReplaced) {
  Instance instance = PoolInstance(10, 8, 3, 404);
  auto solved = SolveCraSdga(instance);
  ASSERT_TRUE(solved.ok());
  Assignment assignment = *solved;
  const int victim = assignment.GroupFor(0)[0];
  ASSERT_TRUE(
      DeclareConflictAndRepair(&instance, victim, 0, &assignment).ok());
  EXPECT_TRUE(instance.IsConflict(victim, 0));
  EXPECT_FALSE(assignment.Contains(0, victim));
  EXPECT_TRUE(assignment.ValidateComplete().ok());
}

TEST(LateConflictTest, UnassignedPairOnlyRegisters) {
  Instance instance = PoolInstance(10, 8, 3, 405);
  auto solved = SolveCraSdga(instance);
  ASSERT_TRUE(solved.ok());
  Assignment assignment = *solved;
  int unassigned = -1;
  for (int r = 0; r < instance.num_reviewers(); ++r) {
    if (!assignment.Contains(0, r)) {
      unassigned = r;
      break;
    }
  }
  ASSERT_GE(unassigned, 0);
  const double score = assignment.TotalScore();
  ASSERT_TRUE(
      DeclareConflictAndRepair(&instance, unassigned, 0, &assignment).ok());
  EXPECT_DOUBLE_EQ(assignment.TotalScore(), score);  // untouched
  EXPECT_TRUE(instance.IsConflict(unassigned, 0));
}

TEST(LateConflictTest, CascadeOfConflictsStaysFeasible) {
  Instance instance = PoolInstance(12, 10, 3, 406);
  auto solved = SolveCraSdga(instance);
  ASSERT_TRUE(solved.ok());
  Assignment assignment = *solved;
  // Conflict every member of paper 0's group, one after another.
  for (int step = 0; step < 3; ++step) {
    const int victim = assignment.GroupFor(0)[0];
    ASSERT_TRUE(
        DeclareConflictAndRepair(&instance, victim, 0, &assignment).ok())
        << "step " << step;
    EXPECT_TRUE(assignment.ValidateComplete().ok());
  }
}

}  // namespace
}  // namespace wgrap::core
