// Topic-model substrate tests: corpus validation, synthetic generation,
// ATM fitting (topic recovery on synthetic ground truth, perplexity), and
// EM paper-vector inference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "topic/atm.h"
#include "topic/corpus.h"
#include "topic/em.h"
#include "topic/synthetic.h"

namespace wgrap::topic {
namespace {

TEST(CorpusTest, ValidCorpusPasses) {
  Corpus corpus;
  corpus.vocab_size = 10;
  corpus.num_authors = 2;
  corpus.documents.push_back({{0, 1, 2}, {0}});
  corpus.documents.push_back({{3, 4}, {0, 1}});
  EXPECT_TRUE(corpus.Validate().ok());
  EXPECT_EQ(corpus.TotalTokens(), 5);
  EXPECT_EQ(corpus.num_documents(), 2);
}

TEST(CorpusTest, RejectsBadIds) {
  Corpus corpus;
  corpus.vocab_size = 5;
  corpus.num_authors = 1;
  corpus.documents.push_back({{7}, {0}});  // word out of range
  EXPECT_EQ(corpus.Validate().code(), StatusCode::kOutOfRange);
  corpus.documents[0] = {{1}, {3}};  // author out of range
  EXPECT_EQ(corpus.Validate().code(), StatusCode::kOutOfRange);
}

TEST(CorpusTest, RejectsEmptyDocument) {
  Corpus corpus;
  corpus.vocab_size = 5;
  corpus.num_authors = 1;
  corpus.documents.push_back({{}, {0}});
  EXPECT_EQ(corpus.Validate().code(), StatusCode::kInvalidArgument);
  corpus.documents[0] = {{1}, {}};
  EXPECT_EQ(corpus.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SyntheticCorpusTest, GeneratesValidCorpus) {
  SyntheticCorpusConfig config;
  config.num_topics = 5;
  config.vocab_size = 200;
  config.num_authors = 12;
  config.num_documents = 40;
  Rng rng(1);
  auto generated = GenerateSyntheticCorpus(config, &rng);
  ASSERT_TRUE(generated.ok());
  EXPECT_TRUE(generated->corpus.Validate().ok());
  EXPECT_EQ(generated->corpus.num_documents(), 40);
  EXPECT_EQ(generated->true_theta.rows(), 12);
  EXPECT_EQ(generated->true_phi.rows(), 5);
  // Ground-truth rows are distributions.
  for (int a = 0; a < 12; ++a) {
    EXPECT_NEAR(generated->true_theta.RowSum(a), 1.0, 1e-9);
  }
  for (int t = 0; t < 5; ++t) {
    EXPECT_NEAR(generated->true_phi.RowSum(t), 1.0, 1e-9);
  }
}

TEST(SyntheticCorpusTest, RejectsBadConfig) {
  SyntheticCorpusConfig config;
  config.num_topics = 0;
  Rng rng(1);
  EXPECT_FALSE(GenerateSyntheticCorpus(config, &rng).ok());
}

TEST(AtmTest, RejectsBadOptions) {
  SyntheticCorpusConfig config;
  config.num_topics = 3;
  config.vocab_size = 50;
  config.num_authors = 4;
  config.num_documents = 10;
  Rng rng(2);
  auto generated = GenerateSyntheticCorpus(config, &rng);
  ASSERT_TRUE(generated.ok());
  AtmOptions options;
  options.num_topics = 0;
  EXPECT_FALSE(FitAtm(generated->corpus, options, &rng).ok());
  options.num_topics = 3;
  options.alpha = 0.0;
  EXPECT_FALSE(FitAtm(generated->corpus, options, &rng).ok());
}

TEST(AtmTest, OutputsAreDistributions) {
  SyntheticCorpusConfig config;
  config.num_topics = 4;
  config.vocab_size = 100;
  config.num_authors = 8;
  config.num_documents = 30;
  Rng rng(3);
  auto generated = GenerateSyntheticCorpus(config, &rng);
  ASSERT_TRUE(generated.ok());
  AtmOptions options;
  options.num_topics = 4;
  options.iterations = 30;
  options.burn_in = 15;
  auto model = FitAtm(generated->corpus, options, &rng);
  ASSERT_TRUE(model.ok());
  for (int a = 0; a < 8; ++a) {
    EXPECT_NEAR(model->theta.RowSum(a), 1.0, 1e-9);
  }
  for (int t = 0; t < 4; ++t) {
    EXPECT_NEAR(model->phi.RowSum(t), 1.0, 1e-9);
  }
}

TEST(AtmTest, BeatsUniformPerplexity) {
  SyntheticCorpusConfig config;
  config.num_topics = 5;
  config.vocab_size = 300;
  config.num_authors = 10;
  config.num_documents = 60;
  Rng rng(4);
  auto generated = GenerateSyntheticCorpus(config, &rng);
  ASSERT_TRUE(generated.ok());
  AtmOptions options;
  options.num_topics = 5;
  options.iterations = 60;
  options.burn_in = 30;
  auto model = FitAtm(generated->corpus, options, &rng);
  ASSERT_TRUE(model.ok());
  const double fitted = ComputePerplexity(generated->corpus, *model);
  // A uniform model has perplexity == vocab size.
  EXPECT_LT(fitted, 0.5 * config.vocab_size);
}

TEST(AtmTest, RecoversSyntheticTopics) {
  // With well-separated topics, each true topic should have a fitted topic
  // whose word distribution is much closer to it than random.
  SyntheticCorpusConfig config;
  config.num_topics = 4;
  config.vocab_size = 120;
  config.num_authors = 16;
  config.num_documents = 150;
  config.mean_document_length = 150;
  config.topic_dirichlet = 0.02;  // sharp topics
  Rng rng(5);
  auto generated = GenerateSyntheticCorpus(config, &rng);
  ASSERT_TRUE(generated.ok());
  AtmOptions options;
  options.num_topics = 4;
  options.iterations = 150;
  options.burn_in = 80;
  auto model = FitAtm(generated->corpus, options, &rng);
  ASSERT_TRUE(model.ok());

  // Greedy best-match by L1 distance; demand a decisively small distance
  // (random pairs of sparse Dirichlet topics have L1 distance ~2).
  int well_matched = 0;
  for (int truth = 0; truth < 4; ++truth) {
    double best = 2.0;
    for (int fit = 0; fit < 4; ++fit) {
      double l1 = 0.0;
      for (int w = 0; w < config.vocab_size; ++w) {
        l1 += std::abs(generated->true_phi(truth, w) - model->phi(fit, w));
      }
      best = std::min(best, l1);
    }
    if (best < 0.8) ++well_matched;
  }
  EXPECT_GE(well_matched, 3) << "topic recovery failed";
}

TEST(EmTest, RecoversPureTopicDocument) {
  // phi has two disjoint topics; a document of only topic-0 words should
  // load almost entirely on topic 0.
  Matrix phi(2, 4, 0.0);
  phi(0, 0) = 0.5;
  phi(0, 1) = 0.5;
  phi(1, 2) = 0.5;
  phi(1, 3) = 0.5;
  auto pi = InferTopicMixture({0, 1, 0, 1, 0}, phi);
  ASSERT_TRUE(pi.ok());
  EXPECT_GT((*pi)[0], 0.95);
}

TEST(EmTest, RecoversMixtureProportions) {
  Matrix phi(2, 4, 0.0);
  phi(0, 0) = 0.5;
  phi(0, 1) = 0.5;
  phi(1, 2) = 0.5;
  phi(1, 3) = 0.5;
  // 6 tokens of topic 0, 2 of topic 1 -> expect roughly 0.75 / 0.25.
  auto pi = InferTopicMixture({0, 1, 0, 1, 0, 1, 2, 3}, phi);
  ASSERT_TRUE(pi.ok());
  EXPECT_NEAR((*pi)[0], 0.75, 0.05);
  EXPECT_NEAR((*pi)[1], 0.25, 0.05);
}

TEST(EmTest, OutputSumsToOne) {
  Rng rng(6);
  Matrix phi(3, 50);
  for (int t = 0; t < 3; ++t) {
    auto row = rng.NextDirichlet(50, 0.1);
    for (int w = 0; w < 50; ++w) phi(t, w) = row[w];
  }
  std::vector<int> words;
  for (int i = 0; i < 40; ++i) {
    words.push_back(static_cast<int>(rng.NextBounded(50)));
  }
  auto pi = InferTopicMixture(words, phi);
  ASSERT_TRUE(pi.ok());
  double total = 0.0;
  for (double v : *pi) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(EmTest, RejectsBadInput) {
  Matrix phi(2, 4, 0.25);
  EXPECT_FALSE(InferTopicMixture({}, phi).ok());
  EXPECT_FALSE(InferTopicMixture({9}, phi).ok());
  EXPECT_FALSE(InferTopicMixture({0}, Matrix()).ok());
}

}  // namespace
}  // namespace wgrap::topic
