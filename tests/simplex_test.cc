// Two-phase simplex tests: textbook LPs, equality/>= rows (phase 1),
// infeasible and unbounded detection, degenerate problems.
#include <gtest/gtest.h>

#include "lp/model.h"
#include "lp/simplex.h"

namespace wgrap::lp {
namespace {

TEST(SimplexTest, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> opt 36 at (2, 6).
  Model model;
  const int x = model.AddVariable(3.0);
  const int y = model.AddVariable(5.0);
  model.AddConstraint({{x, 1.0}}, Sense::kLessEqual, 4.0);
  model.AddConstraint({{y, 2.0}}, Sense::kLessEqual, 12.0);
  model.AddConstraint({{x, 3.0}, {y, 2.0}}, Sense::kLessEqual, 18.0);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->objective, 36.0, 1e-7);
  EXPECT_NEAR(result->x[x], 2.0, 1e-7);
  EXPECT_NEAR(result->x[y], 6.0, 1e-7);
}

TEST(SimplexTest, EqualityConstraintViaPhaseOne) {
  // max x + y s.t. x + y = 5, x <= 3 -> opt 5.
  Model model;
  const int x = model.AddVariable(1.0);
  const int y = model.AddVariable(1.0);
  model.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kEqual, 5.0);
  model.AddConstraint({{x, 1.0}}, Sense::kLessEqual, 3.0);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->objective, 5.0, 1e-7);
  EXPECT_NEAR(result->x[x] + result->x[y], 5.0, 1e-7);
}

TEST(SimplexTest, GreaterEqualConstraint) {
  // max -x s.t. x >= 2  -> opt -2 (minimize x above 2).
  Model model;
  const int x = model.AddVariable(-1.0);
  model.AddConstraint({{x, 1.0}}, Sense::kGreaterEqual, 2.0);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->objective, -2.0, 1e-7);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // max x s.t. -x <= -2 (i.e. x >= 2), x <= 5 -> opt 5.
  Model model;
  const int x = model.AddVariable(1.0);
  model.AddConstraint({{x, -1.0}}, Sense::kLessEqual, -2.0);
  model.AddConstraint({{x, 1.0}}, Sense::kLessEqual, 5.0);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->objective, 5.0, 1e-7);
}

TEST(SimplexTest, InfeasibleDetected) {
  Model model;
  const int x = model.AddVariable(1.0);
  model.AddConstraint({{x, 1.0}}, Sense::kLessEqual, 1.0);
  model.AddConstraint({{x, 1.0}}, Sense::kGreaterEqual, 2.0);
  auto result = SolveLp(model);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  Model model;
  const int x = model.AddVariable(1.0);
  model.AddConstraint({{x, -1.0}}, Sense::kLessEqual, 0.0);  // x >= 0 only
  auto result = SolveLp(model);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnbounded);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the optimum.
  Model model;
  const int x = model.AddVariable(1.0);
  const int y = model.AddVariable(1.0);
  model.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 2.0);
  model.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 2.0);
  model.AddConstraint({{x, 2.0}, {y, 2.0}}, Sense::kLessEqual, 4.0);
  model.AddConstraint({{x, 1.0}}, Sense::kLessEqual, 2.0);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->objective, 2.0, 1e-7);
}

TEST(SimplexTest, RedundantEqualityRows) {
  Model model;
  const int x = model.AddVariable(2.0);
  model.AddConstraint({{x, 1.0}}, Sense::kEqual, 3.0);
  model.AddConstraint({{x, 2.0}}, Sense::kEqual, 6.0);  // redundant copy
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->objective, 6.0, 1e-7);
}

TEST(SimplexTest, EmptyModelRejected) {
  Model model;
  auto result = SolveLp(model);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SimplexTest, PivotLimitReported) {
  Model model;
  const int x = model.AddVariable(1.0);
  const int y = model.AddVariable(1.0);
  model.AddConstraint({{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 2.0);
  SimplexOptions options;
  options.max_pivots = 1;  // too few to finish
  auto result = SolveLp(model, options);
  // Either it finished in one pivot or reports exhaustion — both acceptable,
  // but a crash/hang is not.
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(ModelTest, ToStringMentionsConstraints) {
  Model model;
  const int x = model.AddVariable(1.5);
  model.AddConstraint({{x, 2.0}}, Sense::kLessEqual, 3.0);
  const std::string s = model.ToString();
  EXPECT_NE(s.find("maximize"), std::string::npos);
  EXPECT_NE(s.find("<= 3"), std::string::npos);
}

}  // namespace
}  // namespace wgrap::lp
