// CSV I/O tests: round trips, quoting, malformed input diagnostics, file
// save/load, and assignment pair serialization.
#include <gtest/gtest.h>

#include <cstdio>

#include "data/io.h"
#include "data/synthetic_dblp.h"

namespace wgrap::data {
namespace {

RapDataset SmallDataset() {
  RapDataset dataset;
  dataset.num_topics = 3;
  dataset.reviewers.push_back({"Ada, L.", {0.2, 0.3, 0.5}, 12});
  dataset.reviewers.push_back({"Bob \"Bobby\" B.", {0.9, 0.05, 0.05}, 40});
  dataset.papers.push_back({"On Things, Vol. 2", {0.1, 0.1, 0.8}, "SIGTHING"});
  return dataset;
}

TEST(DatasetCsvTest, RoundTripPreservesEverything) {
  const RapDataset original = SmallDataset();
  auto parsed = DatasetFromCsv(DatasetToCsv(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_topics, 3);
  ASSERT_EQ(parsed->reviewers.size(), 2u);
  ASSERT_EQ(parsed->papers.size(), 1u);
  EXPECT_EQ(parsed->reviewers[0].name, "Ada, L.");
  EXPECT_EQ(parsed->reviewers[1].name, "Bob \"Bobby\" B.");
  EXPECT_EQ(parsed->reviewers[1].h_index, 40);
  EXPECT_EQ(parsed->papers[0].title, "On Things, Vol. 2");
  EXPECT_EQ(parsed->papers[0].venue, "SIGTHING");
  for (int t = 0; t < 3; ++t) {
    EXPECT_DOUBLE_EQ(parsed->reviewers[0].topics[t],
                     original.reviewers[0].topics[t]);
    EXPECT_DOUBLE_EQ(parsed->papers[0].topics[t],
                     original.papers[0].topics[t]);
  }
}

TEST(DatasetCsvTest, GeneratedDatasetRoundTrips) {
  SyntheticDblpConfig config;
  config.num_topics = 10;
  auto dataset = GenerateReviewerPool(25, 15, config);
  ASSERT_TRUE(dataset.ok());
  auto parsed = DatasetFromCsv(DatasetToCsv(*dataset));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_reviewers(), 25);
  EXPECT_EQ(parsed->num_papers(), 15);
  for (int r = 0; r < 25; ++r) {
    for (int t = 0; t < 10; ++t) {
      ASSERT_DOUBLE_EQ(parsed->reviewers[r].topics[t],
                       dataset->reviewers[r].topics[t]);
    }
  }
}

TEST(DatasetCsvTest, RejectsMalformedInput) {
  EXPECT_FALSE(DatasetFromCsv("").ok());
  EXPECT_FALSE(DatasetFromCsv("bogus,header\n").ok());
  // Wrong field count.
  EXPECT_FALSE(
      DatasetFromCsv("kind,name,venue,h_index,t0\nreviewer,x,,1\n").ok());
  // Non-numeric weight.
  EXPECT_FALSE(
      DatasetFromCsv("kind,name,venue,h_index,t0\nreviewer,x,,1,abc\n").ok());
  // Unknown kind.
  EXPECT_FALSE(
      DatasetFromCsv("kind,name,venue,h_index,t0\neditor,x,,1,0.5\n").ok());
  // Unterminated quote.
  EXPECT_FALSE(
      DatasetFromCsv("kind,name,venue,h_index,t0\nreviewer,\"x,,1,0.5\n")
          .ok());
}

TEST(DatasetCsvTest, ErrorMessagesCarryRowNumbers) {
  auto result =
      DatasetFromCsv("kind,name,venue,h_index,t0\nreviewer,x,,1,oops\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("row 2"), std::string::npos);
}

TEST(DatasetFileTest, SaveAndLoad) {
  const std::string path = "/tmp/wgrap_io_test_dataset.csv";
  const RapDataset original = SmallDataset();
  ASSERT_TRUE(SaveDataset(original, path).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->reviewers[0].name, "Ada, L.");
  std::remove(path.c_str());
}

TEST(DatasetFileTest, MissingFileReported) {
  auto result = LoadDataset("/nonexistent/nope.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(AssignmentCsvTest, RoundTrip) {
  std::vector<std::pair<int, int>> pairs = {{0, 3}, {0, 5}, {1, 2}};
  auto parsed = AssignmentPairsFromCsv(AssignmentPairsToCsv(pairs));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, pairs);
}

TEST(AssignmentCsvTest, RejectsMalformed) {
  EXPECT_FALSE(AssignmentPairsFromCsv("nope\n0,1\n").ok());
  EXPECT_FALSE(
      AssignmentPairsFromCsv("paper_id,reviewer_id\n0\n").ok());
  EXPECT_FALSE(
      AssignmentPairsFromCsv("paper_id,reviewer_id\n0,x\n").ok());
}

}  // namespace
}  // namespace wgrap::data
