// Instance construction tests: validation, default workload (⌈P·δp/R⌉),
// capacity feasibility, COI registration, pair scores.
#include <gtest/gtest.h>

#include "core/instance.h"
#include "data/synthetic_dblp.h"

namespace wgrap::core {
namespace {

data::RapDataset TinyDataset() {
  data::RapDataset dataset;
  dataset.num_topics = 3;
  dataset.reviewers.push_back({"r0", {0.1, 0.5, 0.4}, 10});
  dataset.reviewers.push_back({"r1", {1.0, 0.0, 0.0}, 20});
  dataset.reviewers.push_back({"r2", {0.0, 1.0, 0.0}, 30});
  dataset.papers.push_back({"p0", {0.6, 0.0, 0.4}, "V"});
  dataset.papers.push_back({"p1", {0.5, 0.5, 0.0}, "V"});
  dataset.papers.push_back({"p2", {0.5, 0.5, 0.0}, "V"});
  return dataset;
}

TEST(InstanceTest, MinimalWorkloadFormula) {
  EXPECT_EQ(Instance::MinimalWorkload(617, 105, 3), 18);  // ceil(1851/105)
  EXPECT_EQ(Instance::MinimalWorkload(545, 203, 3), 9);   // ceil(1635/203)
  EXPECT_EQ(Instance::MinimalWorkload(10, 10, 1), 1);
  EXPECT_EQ(Instance::MinimalWorkload(0, 5, 3), 0);
}

TEST(InstanceTest, DefaultWorkloadIsMinimal) {
  InstanceParams params;
  params.group_size = 2;
  auto instance = Instance::FromDataset(TinyDataset(), params);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->reviewer_workload(), 2);  // ceil(3*2/3)
  EXPECT_EQ(instance->num_papers(), 3);
  EXPECT_EQ(instance->num_reviewers(), 3);
  EXPECT_EQ(instance->num_topics(), 3);
}

TEST(InstanceTest, ExplicitWorkloadRespected) {
  InstanceParams params;
  params.group_size = 2;
  params.reviewer_workload = 3;
  auto instance = Instance::FromDataset(TinyDataset(), params);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->reviewer_workload(), 3);
}

TEST(InstanceTest, InsufficientCapacityRejected) {
  InstanceParams params;
  params.group_size = 2;
  params.reviewer_workload = 1;  // 3 < 6 required
  auto instance = Instance::FromDataset(TinyDataset(), params);
  ASSERT_FALSE(instance.ok());
  EXPECT_EQ(instance.status().code(), StatusCode::kInvalidArgument);
}

TEST(InstanceTest, GroupSizeLargerThanPoolRejected) {
  InstanceParams params;
  params.group_size = 4;
  auto instance = Instance::FromDataset(TinyDataset(), params);
  EXPECT_FALSE(instance.ok());
}

TEST(InstanceTest, BadGroupSizeRejected) {
  InstanceParams params;
  params.group_size = 0;
  EXPECT_FALSE(Instance::FromDataset(TinyDataset(), params).ok());
}

TEST(InstanceTest, InvalidDatasetRejected) {
  auto dataset = TinyDataset();
  dataset.papers[0].topics = {0.0, 0.0, 0.0};  // zero mass
  InstanceParams params;
  params.group_size = 1;
  EXPECT_FALSE(Instance::FromDataset(dataset, params).ok());
}

TEST(InstanceTest, PairScoreMatchesDefinitionOne) {
  InstanceParams params;
  params.group_size = 2;
  auto instance = Instance::FromDataset(TinyDataset(), params);
  ASSERT_TRUE(instance.ok());
  // c(r0, p0) = min(.1,.6)+min(.5,0)+min(.4,.4) = 0.5, mass 1.0.
  EXPECT_NEAR(instance->PairScore(0, 0), 0.5, 1e-12);
  // c(r1, p1) = min(1,.5)+0+0 = 0.5.
  EXPECT_NEAR(instance->PairScore(1, 1), 0.5, 1e-12);
}

TEST(InstanceTest, PaperMassStored) {
  auto dataset = TinyDataset();
  dataset.papers[0].topics = {0.3, 0.0, 0.3};  // mass 0.6
  InstanceParams params;
  params.group_size = 2;
  auto instance = Instance::FromDataset(dataset, params);
  ASSERT_TRUE(instance.ok());
  EXPECT_NEAR(instance->PaperMass(0), 0.6, 1e-12);
  // Score renormalized by 0.6: min(.1,.3)+min(.4,.3) = 0.4 / 0.6.
  EXPECT_NEAR(instance->PairScore(0, 0), 0.4 / 0.6, 1e-12);
}

TEST(InstanceTest, ConflictRegistrationAndLookup) {
  InstanceParams params;
  params.group_size = 2;
  auto instance = Instance::FromDataset(TinyDataset(), params);
  ASSERT_TRUE(instance.ok());
  EXPECT_FALSE(instance->IsConflict(1, 2));
  instance->AddConflict(1, 2);
  EXPECT_TRUE(instance->IsConflict(1, 2));
  EXPECT_FALSE(instance->IsConflict(2, 1));
}

TEST(InstanceTest, ScoringFunctionPropagates) {
  InstanceParams params;
  params.group_size = 2;
  params.scoring = ScoringFunction::kDotProduct;
  auto instance = Instance::FromDataset(TinyDataset(), params);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->scoring(), ScoringFunction::kDotProduct);
  // cD(r1, p0) = 1.0 * 0.6 = 0.6.
  EXPECT_NEAR(instance->PairScore(1, 0), 0.6, 1e-12);
}

TEST(InstanceTest, FromGeneratedDatasetAtScale) {
  data::SyntheticDblpConfig config;
  auto dataset = data::GenerateConferenceDataset(data::Area::kDatabases, 2008,
                                                 config);
  ASSERT_TRUE(dataset.ok());
  InstanceParams params;
  params.group_size = 3;
  auto instance = Instance::FromDataset(*dataset, params);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->reviewer_workload(), 18);  // Sec. 5.2 minimal workload
}

}  // namespace
}  // namespace wgrap::core
