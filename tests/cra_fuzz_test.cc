// Randomized cross-solver sweeps: every CRA solver must produce a feasible,
// score-consistent assignment across a grid of instance shapes, scoring
// functions, workload regimes, COI densities and bid settings — the
// integration safety net over the whole library.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/cra.h"
#include "core/jra.h"
#include "core/metrics.h"
#include "data/synthetic_dblp.h"
#include "fuzz_util.h"

namespace wgrap::core {
namespace {

struct FuzzCase {
  int reviewers;
  int papers;
  int group_size;
  int extra_workload;     // 0 = the tight minimal workload
  ScoringFunction scoring;
  double conflict_rate;   // fraction of (r, p) pairs conflicted
  bool with_bids;
  uint64_t seed;

  std::string Name() const {
    return "r" + std::to_string(reviewers) + "_p" + std::to_string(papers) +
           "_g" + std::to_string(group_size) + "_w" +
           std::to_string(extra_workload) + "_" +
           ScoringFunctionName(scoring) +
           (conflict_rate > 0 ? "_coi" : "") + (with_bids ? "_bids" : "") +
           "_s" + std::to_string(seed);
  }
};

class CraFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(CraFuzzTest, AllSolversFeasibleAndConsistent) {
  const FuzzCase& c = GetParam();
  // Seeded construction shared with the update-equivalence fuzzer
  // (fuzz_util.h); the perturbation stream there is the one this suite has
  // always used, so the cases are unchanged.
  FuzzInstanceConfig config;
  config.reviewers = c.reviewers;
  config.papers = c.papers;
  config.num_topics = 10;
  config.group_size = c.group_size;
  config.extra_workload = c.extra_workload;
  config.scoring = c.scoring;
  config.conflict_rate = c.conflict_rate;
  config.with_bids = c.with_bids;
  config.bid_weight = 0.4;
  config.seed = c.seed;
  auto instance = MakeFuzzInstance(config);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();

  using Solver = std::function<Result<Assignment>(const Instance&)>;
  const std::vector<std::pair<std::string, Solver>> solvers = {
      {"SM", [](const Instance& i) { return SolveCraStableMatching(i); }},
      {"ILP", [](const Instance& i) { return SolveCraIlpArap(i); }},
      {"BRGG", [](const Instance& i) { return SolveCraBrgg(i); }},
      {"Greedy", [](const Instance& i) { return SolveCraGreedy(i); }},
      {"SDGA", [](const Instance& i) { return SolveCraSdga(i); }},
      {"SDGA-SRA",
       [&](const Instance& i) {
         SraOptions sra;
         sra.max_iterations = 10;
         sra.seed = c.seed;
         return SolveCraSdgaSra(i, {}, sra);
       }},
  };
  double sdga_score = -1.0, sra_score = -1.0;
  for (const auto& [name, solve] : solvers) {
    auto assignment = solve(*instance);
    ASSERT_TRUE(assignment.ok())
        << name << " on " << c.Name() << ": "
        << assignment.status().ToString();
    EXPECT_TRUE(assignment->ValidateComplete().ok()) << name;
    // Cached total must equal a from-scratch recomputation.
    double recomputed = 0.0;
    for (int p = 0; p < c.papers; ++p) {
      const auto& group = assignment->GroupFor(p);
      double paper_score = ScoreGroup(*instance, p, group);
      for (int r : group) paper_score += instance->BidBonus(r, p);
      recomputed += paper_score;
    }
    EXPECT_NEAR(assignment->TotalScore(), recomputed, 1e-8) << name;
    if (name == "SDGA") sdga_score = assignment->TotalScore();
    if (name == "SDGA-SRA") sra_score = assignment->TotalScore();
  }
  // Refinement never hurts.
  EXPECT_GE(sra_score, sdga_score - 1e-9) << c.Name();
}

std::vector<FuzzCase> MakeCases() {
  std::vector<FuzzCase> cases;
  uint64_t seed = 1000;
  // Shape sweep under the default scoring, tight workload.
  for (auto [r, p, g] : {std::tuple{8, 12, 3}, {12, 8, 2}, {20, 30, 3},
                         {15, 15, 4}, {6, 20, 2}}) {
    cases.push_back({r, p, g, 0, ScoringFunction::kWeightedCoverage, 0.0,
                     false, seed++});
  }
  // Scoring sweep.
  for (ScoringFunction f :
       {ScoringFunction::kReviewerCoverage, ScoringFunction::kPaperCoverage,
        ScoringFunction::kDotProduct}) {
    cases.push_back({10, 14, 3, 0, f, 0.0, false, seed++});
  }
  // Loose workload, conflicts, bids, and combinations.
  cases.push_back({10, 12, 3, 3, ScoringFunction::kWeightedCoverage, 0.0,
                   false, seed++});
  cases.push_back({12, 16, 3, 1, ScoringFunction::kWeightedCoverage, 0.1,
                   false, seed++});
  cases.push_back({12, 16, 3, 1, ScoringFunction::kWeightedCoverage, 0.0,
                   true, seed++});
  cases.push_back({14, 18, 3, 1, ScoringFunction::kWeightedCoverage, 0.08,
                   true, seed++});
  cases.push_back({14, 18, 2, 0, ScoringFunction::kDotProduct, 0.05, true,
                   seed++});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CraFuzzTest, ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<FuzzCase>& info) {
                           return info.param.Name();
                         });

// JRA fuzz: BBA == BFS across shapes, scorings and COI densities.
struct JraFuzzCase {
  int reviewers;
  int group_size;
  ScoringFunction scoring;
  double conflict_rate;
  uint64_t seed;
};

class JraFuzzTest : public ::testing::TestWithParam<JraFuzzCase> {};

TEST_P(JraFuzzTest, BbaMatchesBfs) {
  const JraFuzzCase& c = GetParam();
  data::SyntheticDblpConfig config;
  config.num_topics = 10;
  config.seed = c.seed;
  auto dataset = data::GenerateReviewerPool(c.reviewers, 2, config);
  ASSERT_TRUE(dataset.ok());
  InstanceParams params;
  params.group_size = c.group_size;
  params.reviewer_workload = c.reviewers;
  params.scoring = c.scoring;
  auto instance = Instance::FromDataset(*dataset, params);
  ASSERT_TRUE(instance.ok());
  Rng rng(c.seed ^ 0x70 + 1);
  for (int r = 0; r < c.reviewers; ++r) {
    if (rng.NextDouble() < c.conflict_rate) instance->AddConflict(r, 0);
  }
  auto bfs = SolveJraBruteForce(*instance, 0);
  auto bba = SolveJraBba(*instance, 0);
  if (!bfs.ok()) {
    EXPECT_EQ(bba.status().code(), bfs.status().code());
    return;
  }
  ASSERT_TRUE(bba.ok());
  EXPECT_NEAR(bba->score, bfs->score, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JraFuzzTest,
    ::testing::Values(
        JraFuzzCase{10, 3, ScoringFunction::kWeightedCoverage, 0.0, 1},
        JraFuzzCase{12, 4, ScoringFunction::kWeightedCoverage, 0.0, 2},
        JraFuzzCase{14, 3, ScoringFunction::kReviewerCoverage, 0.0, 3},
        JraFuzzCase{14, 3, ScoringFunction::kPaperCoverage, 0.0, 4},
        JraFuzzCase{14, 3, ScoringFunction::kDotProduct, 0.0, 5},
        JraFuzzCase{16, 3, ScoringFunction::kWeightedCoverage, 0.3, 6},
        JraFuzzCase{16, 2, ScoringFunction::kWeightedCoverage, 0.6, 7},
        JraFuzzCase{18, 3, ScoringFunction::kWeightedCoverage, 0.1, 8}));

}  // namespace
}  // namespace wgrap::core
