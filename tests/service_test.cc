// Service-layer contracts: InstanceStore snapshot isolation and CAS
// installs, JobQueue lifecycle / eviction / cancellation, and the
// ServiceApi end-to-end properties the server depends on — most
// importantly that a solve racing a mutation produces byte-for-byte the
// result of a sequential solve on the snapshot it started from. The CI
// sanitizer jobs run this suite under TSan.
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/registry.h"
#include "obs/metrics.h"
#include "core/update.h"
#include "data/io.h"
#include "fuzz_util.h"
#include "service/api.h"
#include "service/instance_store.h"
#include "service/job_queue.h"
#include "service/reports.h"

namespace wgrap::service {
namespace {

core::FuzzInstanceConfig SmallConfig() {
  core::FuzzInstanceConfig config;
  config.reviewers = 12;
  config.papers = 8;
  config.num_topics = 10;
  config.group_size = 3;
  config.seed = 99;
  return config;
}

std::string SmallDatasetCsv() {
  auto dataset = core::MakeFuzzDataset(SmallConfig());
  EXPECT_TRUE(dataset.ok()) << dataset.status().ToString();
  return data::DatasetToCsv(*dataset);
}

core::InstanceParams SmallParams() { return core::MakeFuzzParams(SmallConfig()); }

/// Opens `name` with the small dataset on `api` and fails the test on error.
SessionInfo OpenSmall(ServiceApi& api, const std::string& name) {
  OpenRequest request;
  request.session = name;
  request.dataset_csv = SmallDatasetCsv();
  request.params = SmallParams();
  auto response = api.Open(request);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  return response->info;
}

std::vector<std::pair<int, int>> SolvePairs(const core::Instance& instance) {
  auto assignment =
      core::SolverRegistry::Default().SolveCra("greedy", instance, {});
  EXPECT_TRUE(assignment.ok()) << assignment.status().ToString();
  std::vector<std::pair<int, int>> pairs;
  for (int p = 0; p < instance.num_papers(); ++p) {
    for (int r : assignment->GroupFor(p)) pairs.emplace_back(p, r);
  }
  return pairs;
}

// --- InstanceStore -----------------------------------------------------------

TEST(InstanceStoreTest, OpenGetCloseLifecycle) {
  InstanceStore store;
  auto dataset = core::MakeFuzzDataset(SmallConfig());
  ASSERT_TRUE(dataset.ok());

  auto opened = store.Open("conf", *dataset, SmallParams());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->name, "conf");
  EXPECT_EQ(opened->version, 1);
  EXPECT_EQ(opened->instance->num_papers(), 8);
  EXPECT_EQ(opened->assignment, nullptr);

  // Duplicate names are rejected, empty names are invalid.
  EXPECT_EQ(store.Open("conf", *dataset, SmallParams()).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.Open("", *dataset, SmallParams()).status().code(),
            StatusCode::kInvalidArgument);

  auto got = store.Get("conf");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->version, 1);
  EXPECT_EQ(store.Get("nope").status().code(), StatusCode::kNotFound);

  EXPECT_EQ(store.List().size(), 1u);
  EXPECT_TRUE(store.Close("conf").ok());
  EXPECT_EQ(store.Close("conf").code(), StatusCode::kNotFound);
  EXPECT_TRUE(store.List().empty());
}

TEST(InstanceStoreTest, InstallAssignmentPublishesNewVersion) {
  InstanceStore store;
  auto dataset = core::MakeFuzzDataset(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  ASSERT_TRUE(store.Open("conf", *dataset, SmallParams()).ok());

  const auto pairs = SolvePairs(*store.Get("conf")->instance);
  auto installed = store.InstallAssignment("conf", pairs);
  ASSERT_TRUE(installed.ok()) << installed.status().ToString();
  EXPECT_EQ(installed->version, 2);
  ASSERT_NE(installed->assignment, nullptr);
  EXPECT_EQ(static_cast<size_t>(installed->assignment->size()), pairs.size());

  // An invalid pair rejects the whole install and leaves the session as-is.
  auto bad = store.InstallAssignment("conf", {{0, 0}, {0, 0}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(store.Get("conf")->version, 2);
}

TEST(InstanceStoreTest, SnapshotIsolationAcrossMutation) {
  InstanceStore store;
  auto dataset = core::MakeFuzzDataset(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  ASSERT_TRUE(store.Open("conf", *dataset, SmallParams()).ok());
  ASSERT_TRUE(
      store.InstallAssignment("conf", SolvePairs(*store.Get("conf")->instance))
          .ok());

  // Pin the snapshot, then mutate the session underneath it.
  auto before = store.Get("conf");
  ASSERT_TRUE(before.ok());
  const int papers_before = before->instance->num_papers();
  const double score_before = before->assignment->TotalScore();

  auto mutated = store.Mutate(
      "conf", {core::InstanceUpdate::RemovePaper(0),
               core::InstanceUpdate::SetCoi(1, 1, true)});
  ASSERT_TRUE(mutated.ok()) << mutated.status().ToString();
  EXPECT_EQ(mutated->snapshot.instance->num_papers(), papers_before - 1);
  EXPECT_GT(mutated->snapshot.version, before->version);

  // The pinned snapshot is bitwise untouched — this is what lets an
  // in-flight solve keep running against it.
  EXPECT_EQ(before->instance->num_papers(), papers_before);
  EXPECT_EQ(before->assignment->TotalScore(), score_before);
}

TEST(InstanceStoreTest, CompareAndSetInstallRespectsVersions) {
  InstanceStore store;
  auto dataset = core::MakeFuzzDataset(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  ASSERT_TRUE(store.Open("conf", *dataset, SmallParams()).ok());
  auto snap = store.Get("conf");
  ASSERT_TRUE(snap.ok());
  const auto pairs = SolvePairs(*snap->instance);

  // Same version: install lands.
  auto installed = store.InstallAssignmentIfCurrent("conf", snap->version,
                                                    pairs);
  ASSERT_TRUE(installed.ok()) << installed.status().ToString();

  // Stale version (the install itself moved it): install refused.
  auto stale = store.InstallAssignmentIfCurrent("conf", snap->version, pairs);
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
}

TEST(InstanceStoreTest, FailedMutationRollsBackTheBatch) {
  InstanceStore store;
  auto dataset = core::MakeFuzzDataset(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  ASSERT_TRUE(store.Open("conf", *dataset, SmallParams()).ok());
  auto before = store.Get("conf");
  ASSERT_TRUE(before.ok());

  // First update applies, second is out of range — the batch must not be
  // half-visible afterwards.
  auto outcome = store.Mutate(
      "conf", {core::InstanceUpdate::SetCoi(0, 0, true),
               core::InstanceUpdate::RemovePaper(10'000)});
  ASSERT_FALSE(outcome.ok());
  auto after = store.Get("conf");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->version, before->version);
  EXPECT_FALSE(after->instance->IsConflict(0, 0));
}

// --- JobQueue ----------------------------------------------------------------

JobQueue::Options QueueOptions(int workers, int max_results) {
  JobQueue::Options options;
  options.workers = workers;
  options.max_results = max_results;
  return options;
}

TEST(JobQueueTest, SubmitWaitResultLifecycle) {
  JobQueue queue(QueueOptions(2, 8));
  const int64_t id = *queue.Submit("t", [](const JobContext&) {
    JobResult result;
    result.report = "hello\n";
    return result;
  });
  EXPECT_EQ(id, 1);
  auto result = queue.Wait(id);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->status.ok());
  EXPECT_EQ(result->report, "hello\n");

  auto status = queue.GetStatus(id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_TRUE(status->result_available);
  EXPECT_EQ(status->label, "t");

  EXPECT_EQ(queue.GetResult(99).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(queue.Wait(99).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(queue.Cancel(id).code(), StatusCode::kFailedPrecondition);
}

TEST(JobQueueTest, BoundedResultStoreEvictsOldestFirst) {
  JobQueue queue(QueueOptions(1, 2));
  for (int i = 0; i < 3; ++i) {
    queue.Submit("t", [i](const JobContext&) {
      JobResult result;
      result.report = "r" + std::to_string(i) + "\n";
      return result;
    });
  }
  queue.Drain();
  // Jobs finish in submit order on one worker: job 1's payload is evicted.
  EXPECT_EQ(queue.GetResult(1).status().code(),
            StatusCode::kResourceExhausted);
  auto status1 = queue.GetStatus(1);
  ASSERT_TRUE(status1.ok());  // the status row survives eviction
  EXPECT_FALSE(status1->result_available);
  ASSERT_TRUE(queue.GetResult(2).ok());
  EXPECT_EQ(queue.GetResult(2)->report, "r1\n");
  EXPECT_EQ(queue.GetResult(3)->report, "r2\n");
}

TEST(JobQueueTest, CancellingAQueuedJobSkipsItsBody) {
  JobQueue queue(QueueOptions(1, 8));
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  // Blocker occupies the single worker so the next job stays queued.
  const int64_t blocker = *queue.Submit("blocker", [&](const JobContext&) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
    return JobResult();
  });
  std::atomic<bool> body_ran{false};
  const int64_t victim = *queue.Submit("victim", [&](const JobContext&) {
    body_ran.store(true);
    return JobResult();
  });
  EXPECT_TRUE(queue.Cancel(victim).ok());
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  queue.Drain();
  ASSERT_TRUE(queue.Wait(blocker).ok());
  auto result = queue.Wait(victim);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status.code(), StatusCode::kCancelled);
  EXPECT_FALSE(body_ran.load());
}

TEST(JobQueueTest, RunningJobSeesItsCancelToken) {
  JobQueue queue(QueueOptions(1, 8));
  std::mutex mutex;
  std::condition_variable cv;
  bool running = false;
  const int64_t id = *queue.Submit("t", [&](const JobContext& context) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      running = true;
    }
    cv.notify_all();
    // Cooperative poll loop — the shape every solver's deadline check has.
    while (!IsCancelled(context.cancel)) {
      std::this_thread::yield();
    }
    JobResult result;
    result.status = Status::Cancelled("saw the flag");
    return result;
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return running; });
  }
  EXPECT_TRUE(queue.Cancel(id).ok());
  auto result = queue.Wait(id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status.code(), StatusCode::kCancelled);
}

TEST(JobQueueTest, ProgressFramesAreRetainedAndReplayable) {
  JobQueue queue(QueueOptions(1, 8));
  const int64_t id = *queue.Submit("t", [](const JobContext& context) {
    context.progress("frame 0\n");
    context.progress("frame 1\n");
    context.progress("frame 2\n");
    return JobResult();
  });
  ASSERT_TRUE(queue.Wait(id).ok());
  // Replay from 0 after completion: the full retained stream, done=true.
  auto page = queue.WaitProgress(id, 0);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_TRUE(page->done);
  ASSERT_EQ(page->frames.size(), 3u);
  EXPECT_EQ(page->frames[0], "frame 0\n");
  EXPECT_EQ(page->frames[2], "frame 2\n");
  // A cursor mid-stream only returns the tail.
  auto tail = queue.WaitProgress(id, 2);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->frames.size(), 1u);
  EXPECT_EQ(tail->frames[0], "frame 2\n");
  // Past-the-end cursor on a finished job: empty page, still done.
  auto past = queue.WaitProgress(id, 99);
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past->frames.empty());
  EXPECT_TRUE(past->done);

  EXPECT_EQ(queue.WaitProgress(42, 0).status().code(), StatusCode::kNotFound);
}

TEST(JobQueueTest, WaitProgressStreamsFromALiveJob) {
  JobQueue queue(QueueOptions(1, 8));
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  const int64_t id = *queue.Submit("t", [&](const JobContext& context) {
    context.progress("early\n");
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
    context.progress("late\n");
    return JobResult();
  });
  // Blocks until the first frame lands — the job is still running.
  auto first = queue.WaitProgress(id, 0);
  ASSERT_TRUE(first.ok());
  ASSERT_GE(first->frames.size(), 1u);
  EXPECT_EQ(first->frames[0], "early\n");
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  // Blocks again until either the second frame or completion arrives.
  auto rest = queue.WaitProgress(id, 1);
  ASSERT_TRUE(rest.ok());
  if (rest->frames.empty()) {
    // Raced past the frame: a later page from the same cursor has it.
    rest = queue.WaitProgress(id, 1);
    ASSERT_TRUE(rest.ok());
  }
  ASSERT_GE(rest->frames.size(), 1u);
  EXPECT_EQ(rest->frames[0], "late\n");
}

TEST(JobQueueTest, EvictionDropsProgressWithThePayload) {
  JobQueue queue(QueueOptions(1, 1));
  auto emit = [](const JobContext& context) {
    context.progress("p\n");
    return JobResult();
  };
  const int64_t first = *queue.Submit("a", emit);
  const int64_t second = *queue.Submit("b", emit);
  queue.Drain();
  // max_results=1: job `first` was evicted, progress and all.
  EXPECT_EQ(queue.WaitProgress(first, 0).status().code(),
            StatusCode::kResourceExhausted);
  auto kept = queue.WaitProgress(second, 0);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->frames.size(), 1u);
}

TEST(JobQueueTest, ThrowingJobBodySurvivesTheWorker) {
  obs::Gauge* const depth =
      obs::Registry::Global().GetGauge("wgrap_jobs_queue_depth");
  JobQueue queue(QueueOptions(1, 8));
  const int64_t thrower = *queue.Submit("boom", [](const JobContext&) {
    throw std::runtime_error("solver exploded");
    return JobResult();  // unreachable
  });
  // The worker converts the throw into a kInternal result...
  auto result = queue.Wait(thrower);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->status.code(), StatusCode::kInternal);
  EXPECT_NE(result->status.message().find("solver exploded"),
            std::string::npos);
  // ...and lives on to run the next job.
  const int64_t after = *queue.Submit("next", [](const JobContext&) {
    JobResult ok;
    ok.report = "alive\n";
    return ok;
  });
  auto next = queue.Wait(after);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->report, "alive\n");
  queue.Drain();
  // Nothing is left queued — the depth gauge wound back to zero.
  if (depth != nullptr) EXPECT_EQ(depth->Value(), 0);
}

TEST(JobQueueTest, AdmissionControlShedsWhenTheQueueIsFull) {
  JobQueue::Options options = QueueOptions(1, 8);
  options.max_queue_depth = 1;
  JobQueue queue(options);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  // Occupy the single worker so later submits stay queued.
  const int64_t blocker = *queue.Submit("blocker", [&](const JobContext&) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
    return JobResult();
  });
  // Wait until the blocker is actually running (queue empty again).
  while (true) {
    auto status = queue.GetStatus(blocker);
    ASSERT_TRUE(status.ok());
    if (status->state != JobState::kQueued) break;
    std::this_thread::yield();
  }
  // One queued job fills the depth-1 queue; the next submit sheds.
  auto queued = queue.Submit("queued", [](const JobContext&) {
    return JobResult();
  });
  ASSERT_TRUE(queued.ok());
  auto shed = queue.Submit("shed", [](const JobContext&) {
    return JobResult();
  });
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.status().message().find("retry"), std::string::npos);
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  queue.Drain();
  // Shed submits never allocated an id: the admitted jobs are 1 and 2,
  // and the next admitted one is 3 — the deterministic sequence the
  // scripted protocol relies on has no holes.
  EXPECT_EQ(*queue.Submit("post", [](const JobContext&) {
    return JobResult();
  }), 3);
  queue.Drain();
}

TEST(ServiceApiTest, SubmitPropagatesAdmissionShed) {
  ServiceOptions options;
  options.job_workers = 1;
  options.max_queue_depth = 1;
  ServiceApi api(options);
  OpenSmall(api, "conf");
  // A job that blocks the one worker long enough to fill the queue: a
  // cancelled-from-the-start solve still runs its (fast) body, so use a
  // plain submit and rely on queue order instead — the first submit may
  // start immediately, the second sits queued, the third sheds or lands
  // depending on timing. To make it deterministic, block the worker with
  // a raw queue job first.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  const int64_t blocker = *api.jobs().Submit("blocker",
                                             [&](const JobContext&) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
    return JobResult();
  });
  while (true) {
    auto status = api.jobs().GetStatus(blocker);
    ASSERT_TRUE(status.ok());
    if (status->state != JobState::kQueued) break;
    std::this_thread::yield();
  }
  SubmitRequest request;
  request.session = "conf";
  request.solver = "greedy";
  ASSERT_TRUE(api.Submit(request).ok());  // fills the depth-1 queue
  auto shed = api.Submit(request);        // sheds
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  api.jobs().Drain();
}

// --- ServiceApi --------------------------------------------------------------

TEST(ServiceApiTest, SubmitRejectsBadRequestsBeforeCreatingAJob) {
  ServiceApi api;
  OpenSmall(api, "conf");

  SubmitRequest request;
  request.session = "conf";
  request.solver = "no-such-solver";
  EXPECT_EQ(api.Submit(request).status().code(), StatusCode::kNotFound);

  request.solver = "greedy";
  request.knobs["threads"] = "4";  // greedy declares no `threads` knob
  EXPECT_EQ(api.Submit(request).status().code(),
            StatusCode::kInvalidArgument);
  request.knobs.clear();

  request.session = "nope";
  EXPECT_EQ(api.Submit(request).status().code(), StatusCode::kNotFound);

  // Refining without an installed assignment is a precondition failure.
  request.session = "conf";
  request.solver = "sra";
  request.kind = core::SolverRequest::Kind::kRefineCra;
  EXPECT_EQ(api.Submit(request).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ServiceApiTest, SolveJobInstallsAndMatchesDirectRegistryRun) {
  ServiceApi api;
  OpenSmall(api, "conf");
  auto snap = api.store().Get("conf");
  ASSERT_TRUE(snap.ok());

  SubmitRequest request;
  request.session = "conf";
  request.solver = "sdga-sra";
  request.seed = 7;
  auto submitted = api.Submit(request);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto result = api.WaitJob(submitted->job);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok()) << result->status.ToString();

  // The job's payloads are byte-for-byte what a direct (sequential)
  // registry run on the same snapshot renders.
  core::SolverRunOptions options;
  options.seed = 7;
  auto direct = core::SolverRegistry::Default().SolveCra(
      "sdga-sra", *snap->instance, options);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(result->report,
            SolveReportLine("sdga-sra", *snap->instance, *direct, ""));
  EXPECT_EQ(result->assignment_csv, AssignmentCsv(*direct));

  // install=true: the session now holds that assignment.
  auto after = api.store().Get("conf");
  ASSERT_TRUE(after.ok());
  ASSERT_NE(after->assignment, nullptr);
  EXPECT_EQ(AssignmentCsv(*after->assignment), AssignmentCsv(*direct));
}

TEST(ServiceApiTest, SolveRacingAMutationKeepsSnapshotSemantics) {
  ServiceApi api;
  OpenSmall(api, "conf");
  auto snap = api.store().Get("conf");
  ASSERT_TRUE(snap.ok());

  // Submit the solve, then mutate immediately — under TSan this exercises
  // the solve-vs-mutate interleaving; whichever way the race lands, the
  // job's result must equal a sequential solve on the pre-mutation
  // snapshot, byte for byte.
  SubmitRequest request;
  request.session = "conf";
  request.solver = "sdga-sra";
  request.seed = 7;
  auto submitted = api.Submit(request);
  ASSERT_TRUE(submitted.ok());

  MutateRequest mutate;
  mutate.session = "conf";
  mutate.script = "set_coi 0 0 on\nset_coi 1 2 on\n";
  auto mutated = api.Mutate(mutate);
  ASSERT_TRUE(mutated.ok()) << mutated.status().ToString();

  auto result = api.WaitJob(submitted->job);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok()) << result->status.ToString();

  core::SolverRunOptions options;
  options.seed = 7;
  auto direct = core::SolverRegistry::Default().SolveCra(
      "sdga-sra", *snap->instance, options);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(result->report,
            SolveReportLine("sdga-sra", *snap->instance, *direct, ""));
  EXPECT_EQ(result->assignment_csv, AssignmentCsv(*direct));
}

TEST(ServiceApiTest, StaleSolveResultIsNotInstalledOverNewerState) {
  ServiceApi api;
  OpenSmall(api, "conf");

  // Occupy both default workers with the solve after pinning its snapshot
  // version, then land a mutation before the result can install.
  SubmitRequest request;
  request.session = "conf";
  request.solver = "sdga-sra";
  auto submitted = api.Submit(request);
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(api.WaitJob(submitted->job).ok());
  auto installed = api.store().Get("conf");
  ASSERT_TRUE(installed.ok());
  ASSERT_NE(installed->assignment, nullptr);

  // A second solve whose snapshot predates the next mutation: force the
  // stale path deterministically by mutating after the job drains but
  // before checking, using install-if-current directly.
  auto stale = api.store().InstallAssignmentIfCurrent(
      "conf", installed->version - 1,
      {{0, 1}});
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
  auto after = api.store().Get("conf");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(AssignmentCsv(*after->assignment),
            AssignmentCsv(*installed->assignment));
}

TEST(ServiceApiTest, CancelAbortsASolveMidRun) {
  // One worker, and a deliberately heavyweight solve (ILP on a beefed-up
  // instance) so the cancel lands while the solver is searching. Both the
  // queued-skip and the mid-run paths end in kCancelled, so the only
  // timing requirement is that the solve does not finish before Cancel()
  // returns — guaranteed by slowing every deadline poll with a failpoint
  // delay rather than by hoping the instance is big enough under a loaded
  // test machine.
  ASSERT_TRUE(failpoint::Arm("solver.poll", "delay:2").ok());
  core::FuzzInstanceConfig config;
  config.reviewers = 60;
  config.papers = 40;
  config.num_topics = 20;
  config.seed = 5;
  auto dataset = core::MakeFuzzDataset(config);
  ASSERT_TRUE(dataset.ok());

  ServiceApi api(ServiceOptions{/*job_workers=*/1, /*max_results=*/8,
                                /*cache_threads=*/1});
  OpenRequest open;
  open.session = "big";
  open.dataset_csv = data::DatasetToCsv(*dataset);
  open.params = core::MakeFuzzParams(config);
  ASSERT_TRUE(api.Open(open).ok());

  SubmitRequest request;
  request.session = "big";
  request.solver = "ilp";
  auto submitted = api.Submit(request);
  ASSERT_TRUE(submitted.ok());
  // Wait until it is actually running, then cancel.
  for (;;) {
    auto status = api.GetJobStatus(submitted->job);
    ASSERT_TRUE(status.ok());
    if (status->state != JobState::kQueued) break;
    std::this_thread::yield();
  }
  (void)api.CancelJob(submitted->job);
  auto result = api.WaitJob(submitted->job);
  failpoint::DisarmAll();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status.code(), StatusCode::kCancelled)
      << result->status.ToString();
  // The session must not have been polluted by the aborted solve.
  auto after = api.store().Get("big");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->assignment, nullptr);
}

TEST(ServiceApiTest, ResolveRepairsAfterMutation) {
  ServiceApi api;
  OpenSmall(api, "conf");

  SubmitRequest solve;
  solve.session = "conf";
  solve.solver = "sdga-sra";
  auto submitted = api.Submit(solve);
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(api.WaitJob(submitted->job).ok());

  // Knock out a paper's reviewer, then resolve incrementally.
  MutateRequest mutate;
  mutate.session = "conf";
  mutate.script = "remove_reviewer 0\n";
  ASSERT_TRUE(api.Mutate(mutate).ok());

  ResolveRequest resolve;
  resolve.session = "conf";
  resolve.knobs["update_refine"] = "sra";
  auto resubmitted = api.Resolve(resolve);
  ASSERT_TRUE(resubmitted.ok()) << resubmitted.status().ToString();
  auto result = api.WaitJob(resubmitted->job);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok()) << result->status.ToString();
  EXPECT_NE(result->report.find("incremental: score"), std::string::npos);
  EXPECT_NE(result->report.find("feasible: yes"), std::string::npos);

  // The repaired assignment was installed (no competing mutation).
  auto after = api.store().Get("conf");
  ASSERT_TRUE(after.ok());
  ASSERT_NE(after->assignment, nullptr);
  EXPECT_TRUE(after->assignment->ValidateComplete().ok());

  // Resolve validates its knobs against the pipeline schema.
  ResolveRequest bad;
  bad.session = "conf";
  bad.knobs["update_refine"] = "cold";
  EXPECT_EQ(api.Resolve(bad).status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceApiTest, SolveJobStreamsMonotoneProgressFrames) {
  ServiceApi api;
  OpenSmall(api, "conf");
  SubmitRequest request;
  request.session = "conf";
  request.solver = "sdga-sra";
  request.seed = 7;
  auto submitted = api.Submit(request);
  ASSERT_TRUE(submitted.ok());
  auto result = api.WaitJob(submitted->job);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok());

  auto page = api.WaitJobProgress(submitted->job, 0);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_TRUE(page->done);
  ASSERT_FALSE(page->frames.empty());
  // Every frame is the fixed wire format, and best never regresses —
  // SDGA's stages add non-negative marginal gains and SRA/LS only emit on
  // improvement, so the stream is a monotone convergence curve.
  double last_best = -1.0;
  for (const std::string& frame : page->frames) {
    char phase[16] = {0};
    long long round = 0;
    double best = 0.0;
    ASSERT_EQ(std::sscanf(frame.c_str(), "progress %15s round %lld best %lf",
                          phase, &round, &best),
              3)
        << frame;
    EXPECT_GE(best, last_best) << frame;
    last_best = best;
  }
  // The job's payload carries no telemetry: the report is untouched by
  // the progress machinery.
  EXPECT_EQ(result->report.find("progress"), std::string::npos);
}

}  // namespace
}  // namespace wgrap::service
