// Shared seeded instance construction for the randomized sweeps: the CRA
// cross-solver fuzzer (cra_fuzz_test.cc) and the online-update equivalence
// fuzzer (update_equivalence_test.cc) build their starting instances
// through the same helper so a failure in either reproduces from one
// config. The perturbation stream is part of the contract: COIs then bids
// are drawn from Rng(seed ^ 0xc01), papers outer / reviewers inner, and a
// zero conflict_rate (or with_bids=false) consumes no draws at all —
// changing any of that silently reshuffles every case of both suites.
#ifndef WGRAP_TESTS_FUZZ_UTIL_H_
#define WGRAP_TESTS_FUZZ_UTIL_H_

#include <cstdint>

#include "common/status.h"
#include "core/instance.h"
#include "data/dataset.h"

namespace wgrap::core {

struct FuzzInstanceConfig {
  int reviewers = 10;
  int papers = 12;
  int num_topics = 10;
  int group_size = 3;
  /// 0 = the paper's tight minimal workload (dynamic δr = ⌈P·δp/R⌉);
  /// otherwise δr = MinimalWorkload + extra_workload, fixed.
  int extra_workload = 0;
  ScoringFunction scoring = ScoringFunction::kWeightedCoverage;
  /// Fraction of (r, p) pairs conflicted; 0 draws nothing from the rng.
  double conflict_rate = 0.0;
  bool with_bids = false;
  double bid_weight = 0.4;
  /// Build CSR topic views (the sparse scoring kernels).
  bool sparse_topics = false;
  uint64_t seed = 1;
};

/// The synthetic reviewer-pool dataset for a config (topics only; COIs and
/// bids live on the instance).
Result<data::RapDataset> MakeFuzzDataset(const FuzzInstanceConfig& config);

/// The InstanceParams a config implies (group size, workload regime,
/// scoring, sparse views).
InstanceParams MakeFuzzParams(const FuzzInstanceConfig& config);

/// Applies the seeded COI/bid perturbations to an instance built from
/// MakeFuzzDataset — exactly the stream documented in the header comment.
Status PerturbInstance(const FuzzInstanceConfig& config, Instance* instance);

/// MakeFuzzDataset + FromDataset(MakeFuzzParams) + PerturbInstance.
Result<Instance> MakeFuzzInstance(const FuzzInstanceConfig& config);

}  // namespace wgrap::core

#endif  // WGRAP_TESTS_FUZZ_UTIL_H_
