// SGRAP special-case tests (Sec. 2.3): binarization, the identity between
// weighted coverage on binary vectors and the set-coverage ratio, and the
// WGRAP solvers running unmodified on SGRAP instances.
#include <gtest/gtest.h>

#include <vector>

#include "core/cra.h"
#include "core/jra.h"
#include "core/sgrap.h"
#include "data/synthetic_dblp.h"

namespace wgrap::core {
namespace {

TEST(SetCoverageTest, MatchesDefinition) {
  EXPECT_DOUBLE_EQ(SetCoverageRatio({1, 2, 3}, {2, 3, 4}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(SetCoverageRatio({}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(SetCoverageRatio({1, 2}, {1, 2}), 1.0);
  // Duplicate entries behave as sets.
  EXPECT_DOUBLE_EQ(SetCoverageRatio({1, 1, 2}, {2, 2, 5}), 0.5);
}

TEST(BinarizeTest, ThresholdAndCap) {
  data::RapDataset dataset;
  dataset.num_topics = 4;
  dataset.reviewers.push_back({"r", {0.5, 0.3, 0.1, 0.1}, 1});
  dataset.papers.push_back({"p", {0.05, 0.05, 0.6, 0.3}, "V"});
  BinarizeOptions options;
  options.relative_threshold = 0.5;  // keep topics >= half the max
  auto binary = BinarizeDataset(dataset, options);
  ASSERT_TRUE(binary.ok());
  EXPECT_EQ(binary->reviewers[0].topics, (std::vector<double>{1, 1, 0, 0}));
  EXPECT_EQ(binary->papers[0].topics, (std::vector<double>{0, 0, 1, 1}));

  options.max_topics_per_entity = 1;
  auto capped = BinarizeDataset(dataset, options);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->reviewers[0].topics, (std::vector<double>{1, 0, 0, 0}));
}

TEST(BinarizeTest, NeverProducesZeroVector) {
  data::SyntheticDblpConfig config;
  config.num_topics = 12;
  auto dataset = data::GenerateReviewerPool(15, 10, config);
  ASSERT_TRUE(dataset.ok());
  BinarizeOptions options;
  options.relative_threshold = 1.0;  // keep only the max topic(s)
  auto binary = BinarizeDataset(*dataset, options);
  ASSERT_TRUE(binary.ok());
  EXPECT_TRUE(binary->Validate().ok());  // zero-mass vectors would fail
}

TEST(BinarizeTest, RejectsBadOptions) {
  data::RapDataset dataset;
  dataset.num_topics = 2;
  dataset.reviewers.push_back({"r", {0.5, 0.5}, 1});
  dataset.papers.push_back({"p", {0.5, 0.5}, "V"});
  BinarizeOptions options;
  options.relative_threshold = 1.5;
  EXPECT_FALSE(BinarizeDataset(dataset, options).ok());
  options.relative_threshold = 0.5;
  options.max_topics_per_entity = -1;
  EXPECT_FALSE(BinarizeDataset(dataset, options).ok());
}

TEST(SgrapTest, WeightedCoverageEqualsSetCoverageOnBinaryVectors) {
  // The Sec. 2.3 identity: c(T_g, T_p) = |T_g ∩ T_p| / |T_p|.
  data::SyntheticDblpConfig config;
  config.num_topics = 10;
  config.seed = 17;
  auto dataset = data::GenerateReviewerPool(8, 5, config);
  ASSERT_TRUE(dataset.ok());
  auto binary = BinarizeDataset(*dataset, {});
  ASSERT_TRUE(binary.ok());
  InstanceParams params;
  params.group_size = 3;
  params.reviewer_workload = 8;
  auto instance = Instance::FromDataset(*binary, params);
  ASSERT_TRUE(instance.ok());

  for (int p = 0; p < instance->num_papers(); ++p) {
    std::vector<int> paper_topics;
    for (int t = 0; t < 10; ++t) {
      if (binary->papers[p].topics[t] > 0) paper_topics.push_back(t);
    }
    const std::vector<int> group = {0, 3, 6};
    std::vector<int> group_topics;
    for (int r : group) {
      for (int t = 0; t < 10; ++t) {
        if (binary->reviewers[r].topics[t] > 0) group_topics.push_back(t);
      }
    }
    EXPECT_NEAR(ScoreGroup(*instance, p, group),
                SetCoverageRatio(group_topics, paper_topics), 1e-12)
        << "paper " << p;
  }
}

TEST(SgrapTest, SolversRunOnSgrapInstances) {
  data::SyntheticDblpConfig config;
  config.num_topics = 10;
  config.seed = 18;
  auto dataset = data::GenerateReviewerPool(10, 12, config);
  ASSERT_TRUE(dataset.ok());
  auto binary = BinarizeDataset(*dataset, {});
  ASSERT_TRUE(binary.ok());
  InstanceParams params;
  params.group_size = 3;
  auto instance = Instance::FromDataset(*binary, params);
  ASSERT_TRUE(instance.ok());
  // BBA stays exact on the set-coverage special case.
  auto bba = SolveJraBba(*instance, 0);
  auto bfs = SolveJraBruteForce(*instance, 0);
  ASSERT_TRUE(bba.ok() && bfs.ok());
  EXPECT_NEAR(bba->score, bfs->score, 1e-12);
  // The CRA pipeline keeps its guarantees (SGRAP ⊂ WGRAP).
  auto sdga = SolveCraSdga(*instance);
  auto greedy = SolveCraGreedy(*instance);
  ASSERT_TRUE(sdga.ok() && greedy.ok());
  EXPECT_TRUE(sdga->ValidateComplete().ok());
  EXPECT_TRUE(greedy->ValidateComplete().ok());
}

}  // namespace
}  // namespace wgrap::core
