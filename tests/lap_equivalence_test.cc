// Cross-backend LAP equivalence suite: the ε-scaling auction must find
// exactly the optimum min-cost flow (and, at unit capacities, the
// Hungarian algorithm) finds — same scaled-integer objective on every
// instance, and the identical assignment on instances whose optimum is
// unique (continuous random profits; the paper's instances are of this
// kind). Sweeps cover P/R shapes, capacity styles, forbidden-pair
// densities, top-K pruning with the exactness guard, demand > 1, and 1-
// vs 8-thread bidding (bit-identical output is the determinism contract).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/cra.h"
#include "data/synthetic_dblp.h"
#include "la/auction.h"
#include "la/hungarian.h"
#include "la/transportation.h"
#include "obs/metrics.h"

namespace wgrap::la {
namespace {

// Continuous profits in (-1, 1) so the scaled optimum is unique with
// probability ~1; `forbidden_fraction` knocks out candidate edges.
Matrix RandomProfit(int tasks, int agents, double forbidden_fraction,
                    Rng* rng) {
  Matrix profit(tasks, agents, kTransportForbidden);
  for (int t = 0; t < tasks; ++t) {
    for (int a = 0; a < agents; ++a) {
      if (rng->NextDouble() < forbidden_fraction) continue;
      profit.At(t, a) = 2.0 * rng->NextDouble() - 1.0;
    }
  }
  return profit;
}

// Both integer backends optimize Σ ScaleTransportProfit(p) — compare
// objectives exactly in that domain (double sums differ by fp order).
int64_t ScaledObjective(const Matrix& profit,
                        const std::vector<int>& task_to_agent) {
  int64_t total = 0;
  for (int t = 0; t < profit.rows(); ++t) {
    total += ScaleTransportProfit(profit.At(t, task_to_agent[t]));
  }
  return total;
}

int64_t ScaledObjective(const Matrix& profit,
                        const std::vector<std::vector<int>>& task_to_agents) {
  int64_t total = 0;
  for (int t = 0; t < profit.rows(); ++t) {
    for (int a : task_to_agents[t]) {
      total += ScaleTransportProfit(profit.At(t, a));
    }
  }
  return total;
}

TEST(LapEquivalenceTest, AuctionMatchesMinCostFlowAcrossSweeps) {
  ThreadPool pool(8);
  Rng rng(20150531);
  const struct {
    int tasks;
    int agents;
  } shapes[] = {{5, 8}, {12, 7}, {20, 25}, {33, 14}};
  int feasible_count = 0;
  for (const auto& shape : shapes) {
    for (const double forbidden : {0.0, 0.35, 0.7}) {
      for (const int capacity_style : {0, 1, 2}) {
        Matrix profit =
            RandomProfit(shape.tasks, shape.agents, forbidden, &rng);
        std::vector<int> capacity(shape.agents);
        for (int a = 0; a < shape.agents; ++a) {
          capacity[a] = capacity_style == 0   ? 1
                        : capacity_style == 1 ? 3
                                              : rng.NextInt(0, 4);
        }
        auto flow = SolveTransportation(profit, capacity);
        auto auction_inline = SolveAuctionTransportation(profit, capacity);
        AuctionOptions threaded;
        threaded.pool = &pool;
        auto auction_threaded =
            SolveAuctionTransportation(profit, capacity, threaded);
        if (!flow.ok()) {
          EXPECT_EQ(flow.status().code(), StatusCode::kInfeasible);
          ASSERT_FALSE(auction_inline.ok());
          EXPECT_EQ(auction_inline.status().code(), StatusCode::kInfeasible);
          continue;
        }
        ++feasible_count;
        ASSERT_TRUE(auction_inline.ok())
            << auction_inline.status().ToString();
        ASSERT_TRUE(auction_threaded.ok());
        EXPECT_EQ(ScaledObjective(profit, flow->task_to_agent),
                  ScaledObjective(profit, auction_inline->task_to_agent));
        // Unique optimum (continuous profits) → identical assignment.
        EXPECT_EQ(flow->task_to_agent, auction_inline->task_to_agent);
        // Bit-identical at any thread count, including none.
        EXPECT_EQ(auction_inline->task_to_agent,
                  auction_threaded->task_to_agent);
      }
    }
  }
  EXPECT_GT(feasible_count, 10);  // the sweep must actually exercise solves
}

TEST(LapEquivalenceTest, AuctionMatchesHungarianAtUnitCapacity) {
  Rng rng(7);
  for (const int tasks : {6, 15}) {
    const int agents = tasks + 5;
    Matrix profit = RandomProfit(tasks, agents, 0.2, &rng);
    // Hungarian uses its own forbidden marker; same cells, same value.
    auto hungarian = SolveMaxProfitAssignment(profit);
    auto auction = SolveAuctionTransportation(
        profit, std::vector<int>(agents, 1));
    ASSERT_TRUE(hungarian.ok() && auction.ok());
    EXPECT_EQ(ScaledObjective(profit, hungarian->row_to_col),
              ScaledObjective(profit, auction->task_to_agent));
    EXPECT_EQ(hungarian->row_to_col, auction->task_to_agent);
  }
}

TEST(LapEquivalenceTest, TopKPruningGuardNeverReturnsSubOptimal) {
  ThreadPool pool(8);
  Rng rng(99);
  AuctionOptions options;
  options.pool = &pool;
  for (const int tasks : {10, 24}) {
    const int agents = 18;
    for (const double forbidden : {0.0, 0.4}) {
      Matrix profit = RandomProfit(tasks, agents, forbidden, &rng);
      std::vector<int> capacity(agents, 2);
      auto flow = SolveTransportation(profit, capacity);
      if (!flow.ok()) continue;
      const int64_t dense_optimum =
          ScaledObjective(profit, flow->task_to_agent);
      for (const int k : {1, 2, 4, 8}) {
        int widenings = 0;
        auto pruned =
            SolveAuctionTopK(profit, capacity, k, options, &widenings);
        ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
        EXPECT_EQ(dense_optimum,
                  ScaledObjective(profit, pruned->task_to_agent))
            << "tasks=" << tasks << " k=" << k;
        // K=1 cannot cover capacity conflicts — the guard must widen, not
        // return a feasible-but-worse assignment.
        if (k == 1 && tasks > agents) {
          EXPECT_GT(widenings, 0);
        }
      }
    }
  }
}

TEST(LapEquivalenceTest, DemandAuctionMatchesFlowOrFallsBack) {
  ThreadPool pool(8);
  Rng rng(1234);
  for (const int demand : {2, 3}) {
    for (const int tasks : {6, 14}) {
      const int agents = 10;
      Matrix profit = RandomProfit(tasks, agents, 0.15, &rng);
      std::vector<int> capacity(agents, (tasks * demand) / agents + 2);
      auto flow = SolveTransportationWithDemand(profit, capacity, demand);
      TransportationOptions options;
      options.backend = TransportationBackend::kAuction;
      options.pool = &pool;
      auto auction =
          SolveTransportationWithDemand(profit, capacity, demand, options);
      ASSERT_EQ(flow.ok(), auction.ok());
      if (!flow.ok()) continue;
      EXPECT_EQ(ScaledObjective(profit, flow->task_to_agents),
                ScaledObjective(profit, auction->task_to_agents));
      EXPECT_EQ(flow->task_to_agents, auction->task_to_agents);
    }
  }
}

// The forward-reverse auction must solve near-saturated and tie-heavy
// demand > 1 instances outright — no min-cost-flow fallback. Both
// families were the old certify-or-fallback auction's failure modes:
// with total capacity exactly equal to total demand every agent must
// saturate and the old sibling-exclusion rule livelocked siblings
// chasing the last open agent, while quantized profits (massive ties)
// stressed the exact dual certificate. Convergence is asserted two ways:
// the raw auction solve must succeed (kFailedPrecondition is the
// fallback trigger), and the public backend's fallback counter must not
// move across the whole sweep.
TEST(LapEquivalenceTest, AdversarialDemandInstancesNeedNoFallback) {
  obs::Counter* const fallbacks = obs::Registry::Global().GetCounter(
      "wgrap_lap_auction_fallbacks_total");
  const int64_t fallbacks_before = fallbacks ? fallbacks->Value() : 0;
  ThreadPool pool(8);
  int solves = 0;
  for (const bool tie_heavy : {false, true}) {
    for (const int demand : {2, 3}) {
      for (const int tasks : {8, 13}) {
        for (const int spare : {0, 1}) {
          Rng rng(31000 + 2 * tasks + 100 * demand + spare +
                  (tie_heavy ? 7777 : 0));
          const int agents = 6;
          Matrix profit(tasks, agents, kTransportForbidden);
          for (int t = 0; t < tasks; ++t) {
            for (int a = 0; a < agents; ++a) {
              profit.At(t, a) = tie_heavy ? 0.25 * rng.NextInt(0, 3)
                                          : 2.0 * rng.NextDouble() - 1.0;
            }
          }
          // spare == 0 is exact saturation: total slots == total demand.
          const int total = tasks * demand + spare;
          std::vector<int> capacity(agents, total / agents);
          for (int a = 0; a < total % agents; ++a) ++capacity[a];
          auto flow = SolveTransportationWithDemand(profit, capacity, demand);
          ASSERT_TRUE(flow.ok()) << flow.status().ToString();
          const int64_t optimum = ScaledObjective(profit, flow->task_to_agents);

          AuctionOptions options;
          options.demand = demand;
          options.pool = &pool;
          auto direct = SolveAuctionSparse(
              BuildTopKCandidates(profit, 0, nullptr).problem, capacity,
              options);
          ASSERT_TRUE(direct.ok())
              << "demand=" << demand << " tasks=" << tasks << " spare="
              << spare << " tie_heavy=" << tie_heavy << ": "
              << direct.status().ToString();
          EXPECT_EQ(optimum, ScaledObjective(profit, direct->task_to_agents));
          for (int t = 0; t < tasks; ++t) {
            ASSERT_EQ(direct->task_to_agents[t].size(),
                      static_cast<size_t>(demand));
            for (size_t i = 1; i < direct->task_to_agents[t].size(); ++i) {
              EXPECT_NE(direct->task_to_agents[t][i],
                        direct->task_to_agents[t][i - 1]);
            }
          }

          TransportationOptions backend;
          backend.backend = TransportationBackend::kAuction;
          backend.pool = &pool;
          auto via_backend =
              SolveTransportationWithDemand(profit, capacity, demand, backend);
          ASSERT_TRUE(via_backend.ok());
          EXPECT_EQ(optimum,
                    ScaledObjective(profit, via_backend->task_to_agents));
          ++solves;
        }
      }
    }
  }
  EXPECT_GT(solves, 10);
  if (fallbacks) {
    EXPECT_EQ(fallbacks->Value(), fallbacks_before)
        << "the forward-reverse auction fell back to min-cost flow";
  }
}

// Regression: two unassigned units of one task can submit identical bids
// to the same agent in one round; with the task-atomic multi-bid the
// targets are distinct by construction, and the result-assembly guard is
// the last line of defense. Before the original fix this produced
// task_to_agents[t] = [a, a] on ~1 in 9 of these seeds.
TEST(LapEquivalenceTest, DemandUnitsNeverShareAnAgent) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(9000 + seed);
    Matrix profit = RandomProfit(6, 10, 0.0, &rng);
    std::vector<int> capacity(10, 3);
    AuctionOptions options;
    options.demand = 2;
    auto solved = SolveAuctionSparse(
        BuildTopKCandidates(profit, 0, nullptr).problem, capacity, options);
    if (!solved.ok()) {
      // Certification failure is allowed (callers fall back) — silently
      // returning a duplicate pair is not.
      EXPECT_EQ(solved.status().code(), StatusCode::kFailedPrecondition);
      continue;
    }
    auto flow = SolveTransportationWithDemand(profit, capacity, 2);
    ASSERT_TRUE(flow.ok());
    for (int t = 0; t < 6; ++t) {
      ASSERT_EQ(solved->task_to_agents[t].size(), 2u) << "seed " << seed;
      EXPECT_NE(solved->task_to_agents[t][0], solved->task_to_agents[t][1])
          << "seed " << seed << " task " << t;
    }
    // A certified demand-2 solve is exact — same objective as the flow.
    EXPECT_EQ(ScaledObjective(profit, flow->task_to_agents),
              ScaledObjective(profit, solved->task_to_agents))
        << "seed " << seed;
  }
}

TEST(LapEquivalenceTest, InitialEpsilonKnobKeepsTheOptimum) {
  Rng rng(5);
  Matrix profit = RandomProfit(12, 9, 0.1, &rng);
  std::vector<int> capacity(9, 2);
  auto reference = SolveAuctionTransportation(profit, capacity);
  ASSERT_TRUE(reference.ok());
  for (const double epsilon : {1e-3, 0.25, 50.0}) {
    AuctionOptions options;
    options.initial_epsilon = epsilon;
    auto tuned = SolveAuctionTransportation(profit, capacity, options);
    ASSERT_TRUE(tuned.ok()) << "epsilon " << epsilon;
    EXPECT_EQ(ScaledObjective(profit, reference->task_to_agent),
              ScaledObjective(profit, tuned->task_to_agent));
  }
  // A near-zero ε disables the scaling schedule entirely; the auction may
  // then hit its round cap and ask for the mcf fallback — that is the
  // documented contract (never a wrong answer, never a hang).
  AuctionOptions degenerate;
  degenerate.initial_epsilon = 1e-9;
  auto tiny = SolveAuctionTransportation(profit, capacity, degenerate);
  if (tiny.ok()) {
    EXPECT_EQ(ScaledObjective(profit, reference->task_to_agent),
              ScaledObjective(profit, tiny->task_to_agent));
  } else {
    EXPECT_EQ(tiny.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(LapEquivalenceTest, RejectsMalformedInput) {
  // CSR with non-ascending agent ids.
  SparseLapProblem bad;
  bad.num_tasks = 1;
  bad.num_agents = 3;
  bad.row_offsets = {0, 2};
  bad.agent_ids = {2, 1};
  bad.profits = {0.5, 0.25};
  auto solved = SolveAuctionSparse(bad, {1, 1, 1});
  EXPECT_EQ(solved.status().code(), StatusCode::kInvalidArgument);

  // Out-of-range profit (not the forbidden marker).
  Matrix profit(1, 2, 0.5);
  profit.At(0, 0) = 2e6;
  auto out_of_range = SolveAuctionTransportation(profit, {1, 1});
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);

  // Capacity cannot cover the tasks.
  Matrix wide(3, 2, 0.5);
  auto infeasible = SolveAuctionTransportation(wide, {1, 1});
  EXPECT_EQ(infeasible.status().code(), StatusCode::kInfeasible);

  // Empty instance is trivially solved.
  auto empty = SolveAuctionTransportation(Matrix(0, 2), {1, 1});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->task_to_agent.empty());
}

}  // namespace
}  // namespace wgrap::la

namespace wgrap::core {
namespace {

Instance PoolInstance(int reviewers, int papers, int group_size,
                      uint64_t seed, int topics = 12) {
  data::SyntheticDblpConfig config;
  config.num_topics = topics;
  config.seed = seed;
  auto dataset = data::GenerateReviewerPool(reviewers, papers, config);
  EXPECT_TRUE(dataset.ok());
  InstanceParams params;
  params.group_size = group_size;
  auto instance = Instance::FromDataset(*dataset, params);
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  return std::move(instance).value();
}

std::vector<std::vector<int>> Groups(const Assignment& assignment,
                                     const Instance& instance) {
  std::vector<std::vector<int>> groups(instance.num_papers());
  for (int p = 0; p < instance.num_papers(); ++p) {
    groups[p] = assignment.GroupFor(p);
  }
  return groups;
}

TEST(LapEquivalenceTest, SdgaStagesAreBackendAndThreadInvariant) {
  for (const uint64_t seed : {11u, 12u, 13u}) {
    Instance instance = PoolInstance(18, 14, 3, seed);
    SdgaOptions flow_options;
    flow_options.backend = LapBackend::kMinCostFlow;
    auto flow = SolveCraSdga(instance, flow_options);
    ASSERT_TRUE(flow.ok()) << flow.status().ToString();
    for (const int top_k : {0, 2, 5}) {
      SdgaOptions auction_options;
      auction_options.backend = LapBackend::kAuction;
      auction_options.num_threads = 1;
      auction_options.lap_topk = top_k;
      auto auction1 = SolveCraSdga(instance, auction_options);
      ASSERT_TRUE(auction1.ok())
          << "seed " << seed << " k " << top_k << ": "
          << auction1.status().ToString();
      auction_options.num_threads = 8;
      auto auction8 = SolveCraSdga(instance, auction_options);
      ASSERT_TRUE(auction8.ok());
      // Hard determinism contract: bit-identical at any thread count.
      EXPECT_EQ(Groups(*auction1, instance), Groups(*auction8, instance))
          << "seed " << seed << " k " << top_k;
      EXPECT_EQ(auction1->TotalScore(), auction8->TotalScore());
      // Both backends solve every stage to the same optimum; late stages
      // can have tied optima (many zero marginal gains), where the chosen
      // argmax may legitimately differ — compare stage-wise totals, same
      // caveat as CraSdgaTest.BackendsAgreeOnObjective.
      EXPECT_NEAR(flow->TotalScore(), auction1->TotalScore(), 1e-6)
          << "seed " << seed << " k " << top_k;
      EXPECT_TRUE(auction1->ValidateComplete().ok());
    }
  }
}

// Late SDGA/SRA stages routinely contain tied stage optima (saturated
// groups leave many reviewers at identical marginal gain), and a tie
// resolved differently sends the two refinement trajectories apart — so
// full-pipeline group equality only holds on tie-free instances. This
// seed is verified tie-free; the LAP-level tests above carry the exact
// cross-backend guarantee in general.
TEST(LapEquivalenceTest, SdgaSraPipelineIsBackendInvariant) {
  Instance instance = PoolInstance(15, 12, 3, 77, /*topics=*/30);
  SraOptions sra;
  sra.max_iterations = 25;
  auto flow = SolveCraSdgaSra(instance, {}, sra);
  ASSERT_TRUE(flow.ok());
  SdgaOptions sdga_auction;
  sdga_auction.backend = LapBackend::kAuction;
  sdga_auction.lap_topk = 4;
  SraOptions sra_auction = sra;
  sra_auction.backend = LapBackend::kAuction;
  sra_auction.lap_topk = 4;
  sra_auction.num_threads = 8;
  auto auction = SolveCraSdgaSra(instance, sdga_auction, sra_auction);
  ASSERT_TRUE(auction.ok()) << auction.status().ToString();
  EXPECT_EQ(Groups(*flow, instance), Groups(*auction, instance));
  // Identical groups, but each pipeline accumulated its running score
  // through its own Add/Remove history — equal within fp noise only.
  EXPECT_NEAR(flow->TotalScore(), auction->TotalScore(), 1e-9);
}

TEST(LapEquivalenceTest, IlpArapAuctionBackendMatchesFlow) {
  Instance instance = PoolInstance(12, 9, 3, 41);
  auto flow = SolveCraIlpArap(instance);
  ASSERT_TRUE(flow.ok());
  IlpArapOptions auction_options;
  auction_options.backend = LapBackend::kAuction;
  auction_options.num_threads = 4;
  auto auction = SolveCraIlpArap(instance, auction_options);
  ASSERT_TRUE(auction.ok()) << auction.status().ToString();
  // This pool contains an exact score tie (reviewers 1 and 2 score paper
  // 1 identically), and the forward-reverse auction and the flow backend
  // legitimately pick different members of the tied optimum — the seed-era
  // version of this test only saw identical groups because demand > 1
  // auctions always fell back to the flow solver. Compare objectives and
  // completeness instead; AdversarialDemandInstancesNeedNoFallback pins
  // the scaled objective exactly across a whole sweep.
  EXPECT_NEAR(flow->TotalScore(), auction->TotalScore(), 1e-9);
  EXPECT_TRUE(auction->ValidateComplete().ok());
}

}  // namespace
}  // namespace wgrap::core
