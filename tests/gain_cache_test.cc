// Tests for the incremental marginal-gain engine (core/gain_cache.h):
// solver-level equivalence of gains=incremental vs gains=rebuild — scores
// AND assignments, compared with EXPECT_EQ on purpose, because the
// contract is bit-identical, not approximately equal — across solvers,
// topic representations and thread counts, plus targeted invalidation
// units (COI pairs, exhausted reviewers, add/removal epochs) against a
// freshly built cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/cra.h"
#include "core/gain_cache.h"
#include "core/registry.h"
#include "data/synthetic_dblp.h"
#include "la/transportation.h"

namespace wgrap::core {
namespace {

// `topic_density` < 1 generates genuinely sparse profiles (and the
// instance carries CSR views); 1.0 keeps the legacy dense generator and
// drops any views so the dense path is exercised even under the CI runs
// that force WGRAP_SPARSE_TOPICS=1.
Instance PoolInstance(int reviewers, int papers, int group_size,
                      uint64_t seed, double topic_density = 1.0,
                      int workload = 0) {
  data::SyntheticDblpConfig config;
  config.num_topics = 12;
  config.seed = seed;
  config.topic_density = topic_density;
  auto dataset = data::GenerateReviewerPool(reviewers, papers, config);
  WGRAP_CHECK(dataset.ok());
  InstanceParams params;
  params.group_size = group_size;
  params.reviewer_workload = workload;
  params.sparse_topics = topic_density < 1.0;
  auto instance = Instance::FromDataset(*dataset, params);
  WGRAP_CHECK(instance.ok());
  if (topic_density >= 1.0) instance->DropSparseTopics();
  return std::move(instance).value();
}

void ExpectSameAssignment(const Assignment& a, const Assignment& b) {
  EXPECT_EQ(a.TotalScore(), b.TotalScore());
  for (int p = 0; p < a.instance().num_papers(); ++p) {
    EXPECT_EQ(a.GroupFor(p), b.GroupFor(p)) << "paper " << p;
  }
}

// The headline contract: for every solver that builds stage profits or
// replacement scores, `gains=incremental` reproduces `gains=rebuild`
// exactly — dense and sparse topics, 1 and 8 threads.
TEST(GainCacheTest, SolversAreBitIdenticalAcrossGainModes) {
  const auto& registry = SolverRegistry::Default();
  for (double density : {1.0, 0.25}) {
    Instance instance = PoolInstance(14, 10, 3, 401, density);
    for (const char* algo : {"sdga", "sdga-sra", "sdga-ls"}) {
      for (const char* threads : {"1", "8"}) {
        SCOPED_TRACE(std::string(algo) + " density=" +
                     std::to_string(density) + " threads=" + threads);
        SolverRunOptions rebuild;
        rebuild.seed = 77;
        rebuild.extra["threads"] = threads;
        rebuild.extra["gains"] = "rebuild";
        SolverRunOptions incremental = rebuild;
        incremental.extra["gains"] = "incremental";
        auto a = registry.SolveCra(algo, instance, rebuild);
        auto b = registry.SolveCra(algo, instance, incremental);
        ASSERT_TRUE(a.ok()) << a.status().ToString();
        ASSERT_TRUE(b.ok()) << b.status().ToString();
        ExpectSameAssignment(*a, *b);
      }
    }
  }
}

// δp ∤ δr exercises the relaxed-capacity retry inside the stage loop, and
// conflicts exercise the COI masking, in both modes.
TEST(GainCacheTest, ModesAgreeWithConflictsAndUnevenWorkload) {
  Instance instance = PoolInstance(8, 10, 3, 402, /*topic_density=*/1.0,
                                   /*workload=*/4);
  for (int r = 0; r < 4; ++r) instance.AddConflict(r, 0);
  instance.AddConflict(5, 3);
  SdgaOptions rebuild;
  rebuild.gains = GainMode::kRebuild;
  SdgaOptions incremental;
  incremental.gains = GainMode::kIncremental;
  auto a = SolveCraSdga(instance, rebuild);
  auto b = SolveCraSdga(instance, incremental);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectSameAssignment(*a, *b);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(std::count(b->GroupFor(0).begin(), b->GroupFor(0).end(), r), 0)
        << "conflicted reviewer " << r << " assigned";
  }
}

// Bids add a modular per-pair term to every gain; both modes must carry it.
TEST(GainCacheTest, ModesAgreeWithBids) {
  Instance instance = PoolInstance(12, 8, 3, 403);
  Matrix bids(instance.num_papers(), instance.num_reviewers());
  Rng rng(9);
  for (int p = 0; p < bids.rows(); ++p) {
    for (int r = 0; r < bids.cols(); ++r) bids(p, r) = rng.NextDouble();
  }
  ASSERT_TRUE(instance.SetBids(std::move(bids), 0.5).ok());
  for (const char* algo : {"sdga", "sdga-ls"}) {
    SCOPED_TRACE(algo);
    SolverRunOptions rebuild;
    rebuild.extra["gains"] = "rebuild";
    SolverRunOptions incremental;
    incremental.extra["gains"] = "incremental";
    const auto& registry = SolverRegistry::Default();
    auto a = registry.SolveCra(algo, instance, rebuild);
    auto b = registry.SolveCra(algo, instance, incremental);
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectSameAssignment(*a, *b);
  }
}

// Add-epoch unit: after committed Adds, a patched cache must equal a cache
// built from scratch against the mutated assignment — every scaled entry.
TEST(GainCacheTest, AddEpochPatchesMatchFreshBuild) {
  Instance instance = PoolInstance(12, 8, 2, 404, /*topic_density=*/0.3);
  ThreadPool pool(1);
  Assignment assignment(&instance);
  GainCache cache(&instance);
  cache.Refresh(assignment, &pool);
  EXPECT_EQ(cache.full_builds(), 1);
  for (int p = 0; p < instance.num_papers(); ++p) {
    const int r = p % instance.num_reviewers();
    ASSERT_TRUE(assignment.Add(p, r).ok());
    cache.NoteAdd(p, r);
  }
  cache.Refresh(assignment, &pool);
  EXPECT_EQ(cache.full_builds(), 1);  // patched, not rebuilt

  GainCache fresh(&instance);
  fresh.Refresh(assignment, &pool);
  for (int p = 0; p < instance.num_papers(); ++p) {
    for (int r = 0; r < instance.num_reviewers(); ++r) {
      ASSERT_EQ(cache.ScaledGain(p, r), fresh.ScaledGain(p, r))
          << "(" << p << ", " << r << ")";
    }
  }
  // On a sparse instance the patch is targeted: far fewer entries than a
  // full P×R rebuild touches.
  EXPECT_GT(cache.patched_entries(), 0);
  EXPECT_LT(cache.patched_entries(),
            static_cast<int64_t>(instance.num_papers()) *
                instance.num_reviewers());
}

// SRA removal epoch: a Remove lowers group maxima (where the victim held
// them); the patched cache must again equal a fresh build.
TEST(GainCacheTest, RemovalEpochPatchesMatchFreshBuild) {
  Instance instance = PoolInstance(12, 8, 3, 405, /*topic_density=*/0.3);
  auto solved = SolveCraSdga(instance);
  ASSERT_TRUE(solved.ok());
  Assignment assignment = *solved;
  ThreadPool pool(1);
  GainCache cache(&instance);
  cache.Refresh(assignment, &pool);
  for (int p = 0; p < instance.num_papers(); ++p) {
    const int victim = assignment.GroupFor(p).front();
    ASSERT_TRUE(assignment.Remove(p, victim).ok());
    cache.NoteRemove(p, victim);
  }
  cache.Refresh(assignment, &pool);

  GainCache fresh(&instance);
  fresh.Refresh(assignment, &pool);
  for (int p = 0; p < instance.num_papers(); ++p) {
    for (int r = 0; r < instance.num_reviewers(); ++r) {
      ASSERT_EQ(cache.ScaledGain(p, r), fresh.ScaledGain(p, r))
          << "(" << p << ", " << r << ")";
    }
  }
}

// The Note(paper, reviewer) funnel is direction-less by design (see the
// header doc at NoteAdd/NoteRemove): Refresh diffs the group vector
// against its snapshot, so a remove-then-re-add epoch — whose net group
// vectors are unchanged at some papers and changed at others — must
// refresh back to the bit-identical cache a from-scratch build produces,
// without a full rebuild.
TEST(GainCacheTest, NoteDirectionIsIrrelevant) {
  Instance instance = PoolInstance(12, 8, 3, 409, /*topic_density=*/0.3);
  auto solved = SolveCraSdga(instance);
  ASSERT_TRUE(solved.ok());
  Assignment assignment = *solved;
  ThreadPool pool(1);
  GainCache cache(&instance);
  cache.Refresh(assignment, &pool);
  ASSERT_EQ(cache.full_builds(), 1);
  for (int p = 0; p < instance.num_papers(); ++p) {
    const int victim = assignment.GroupFor(p).front();
    ASSERT_TRUE(assignment.Remove(p, victim).ok());
    cache.NoteRemove(p, victim);
    if (p % 2 == 0) {
      // Re-add the same reviewer: the group vector lands back exactly
      // where it was, and the second note adds no information the first
      // did not already carry.
      ASSERT_TRUE(assignment.Add(p, victim).ok());
      cache.NoteAdd(p, victim);
    }
  }
  cache.Refresh(assignment, &pool);
  EXPECT_EQ(cache.full_builds(), 1);  // patched, not rebuilt

  GainCache fresh(&instance);
  fresh.Refresh(assignment, &pool);
  for (int p = 0; p < instance.num_papers(); ++p) {
    for (int r = 0; r < instance.num_reviewers(); ++r) {
      ASSERT_EQ(cache.ScaledGain(p, r), fresh.ScaledGain(p, r))
          << "(" << p << ", " << r << ")";
    }
  }
}

// COI pairs carry the sentinel and assemble as forbidden; an exhausted
// reviewer's whole column assembles as forbidden; live entries round-trip
// the exact scaled integer the rebuild path would hand the LAP.
TEST(GainCacheTest, ConflictAndExhaustedReviewerMasking) {
  Instance instance = PoolInstance(6, 4, 2, 406);
  instance.AddConflict(/*reviewer=*/2, /*paper=*/1);
  ThreadPool pool(1);
  Assignment assignment(&instance);
  ASSERT_TRUE(assignment.Add(0, 3).ok());
  GainCache cache(&instance);
  cache.NoteAdd(0, 3);
  cache.Refresh(assignment, &pool);
  EXPECT_EQ(cache.ScaledGain(1, 2), GainCache::kConflictSentinel);

  std::vector<int> papers;
  for (int p = 0; p < instance.num_papers(); ++p) papers.push_back(p);
  std::vector<int> capacity(instance.num_reviewers(),
                            instance.reviewer_workload());
  capacity[4] = 0;  // exhausted
  Matrix profit;
  cache.AssembleStageProfit(papers, capacity, assignment, &pool, &profit);
  ASSERT_EQ(profit.rows(), instance.num_papers());
  ASSERT_EQ(profit.cols(), instance.num_reviewers());
  EXPECT_EQ(profit(1, 2), la::kTransportForbidden);  // COI
  for (int p = 0; p < instance.num_papers(); ++p) {
    EXPECT_EQ(profit(p, 4), la::kTransportForbidden);  // no capacity
  }
  EXPECT_EQ(profit(0, 3), la::kTransportForbidden);  // already assigned
  for (int p = 0; p < instance.num_papers(); ++p) {
    for (int r = 0; r < instance.num_reviewers(); ++r) {
      if (profit(p, r) == la::kTransportForbidden) continue;
      // What the LAP re-quantizes must be the stored integer, and that
      // integer must be what a rebuild's fresh gain would scale to.
      EXPECT_EQ(la::ScaleTransportProfit(profit(p, r)),
                cache.ScaledGain(p, r));
      EXPECT_EQ(cache.ScaledGain(p, r),
                la::ScaleTransportProfit(assignment.MarginalGain(p, r)));
    }
  }
}

// ReplacementFoldCache unit: cached leave-one-out folds reproduce
// Assignment::ScoreWithReplacement bit for bit — dense and sparse, with
// bids in the mix.
TEST(GainCacheTest, ReplacementFoldCacheMatchesScoreWithReplacement) {
  for (double density : {1.0, 0.3}) {
    SCOPED_TRACE("density=" + std::to_string(density));
    Instance instance = PoolInstance(10, 6, 3, 407, density);
    Matrix bids(instance.num_papers(), instance.num_reviewers());
    Rng rng(21);
    for (int p = 0; p < bids.rows(); ++p) {
      for (int r = 0; r < bids.cols(); ++r) bids(p, r) = rng.NextDouble();
    }
    ASSERT_TRUE(instance.SetBids(std::move(bids), 0.25).ok());
    auto solved = SolveCraSdga(instance);
    ASSERT_TRUE(solved.ok());
    const Assignment& assignment = *solved;
    ThreadPool pool(4);
    ReplacementFoldCache folds(&instance);
    std::vector<int> papers;
    for (int p = 0; p < instance.num_papers(); ++p) papers.push_back(p);
    folds.Prepare(assignment, papers, &pool);
    std::vector<double> scratch;
    for (int p = 0; p < instance.num_papers(); ++p) {
      for (int drop : assignment.GroupFor(p)) {
        for (int add = 0; add < instance.num_reviewers(); ++add) {
          if (add == drop || assignment.Contains(p, add)) continue;
          EXPECT_EQ(folds.Score(p, drop, add),
                    assignment.ScoreWithReplacement(p, drop, add, &scratch))
              << "p=" << p << " drop=" << drop << " add=" << add;
        }
      }
    }
  }
}

// The incremental path is itself thread-count invariant (the rebuild
// equivalence above pins it to the rebuild path at each thread count; this
// pins incremental-1 to incremental-8 directly on a sparse instance).
TEST(GainCacheTest, IncrementalModeIsThreadCountInvariant) {
  Instance instance = PoolInstance(16, 12, 3, 408, /*topic_density=*/0.25);
  const auto& registry = SolverRegistry::Default();
  for (const char* algo : {"sdga", "sdga-sra"}) {
    SCOPED_TRACE(algo);
    SolverRunOptions one;
    one.seed = 5;
    one.extra["gains"] = "incremental";
    one.extra["threads"] = "1";
    SolverRunOptions eight = one;
    eight.extra["threads"] = "8";
    auto a = registry.SolveCra(algo, instance, one);
    auto b = registry.SolveCra(algo, instance, eight);
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectSameAssignment(*a, *b);
  }
}

}  // namespace
}  // namespace wgrap::core
