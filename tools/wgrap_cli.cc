// wgrap command-line tool: dataset generation, conference solving, journal
// (JRA) queries, evaluation and case studies over the CSV formats of
// data/io.h — the workflow a program chair would actually run.
//
// All solving dispatches through the wgrap::core::SolverRegistry, so any
// solver registered at startup is immediately usable via --algo; run
// `wgrap_cli solvers` for the live menu.
//
//   wgrap_cli solvers   [--verbose]   (--verbose appends each solver's
//                       declared knob schema — the same payload the
//                       service's `solvers verbose` command returns)
//   wgrap_cli generate  --area DB --year 2008 [--density 0.1] --out d.csv
//   wgrap_cli generate  --pool 300 --papers 50 --out pool.csv
//   wgrap_cli solve     --dataset d.csv --dp 3 [--dr N] [--algo sdga-sra]
//                       [--scoring c|cR|cP|cD] [--budget secs] [--seed S]
//                       [--threads N] [--lap mcf|hungarian|auction]
//                       [--lap-topk K] [--lap-epsilon E]
//                       [--sra-omega W] [--sra-lambda L]
//                       [--topics dense|sparse]
//                       [--gains incremental|rebuild]
//                       [--trace spans.json] [--verbose]
//                       [--refine initial.csv] --out a.csv
//     (--trace records the solver's span tree to a chrome://tracing JSON
//      file; --verbose prints the dispatched kernel backend (avx2/scalar)
//      and solver telemetry counters to stderr — both leave stdout
//      byte-identical to an uninstrumented run, which CI asserts)
//     (--refine runs the algo's refine-from-initial hook — sra or ls —
//      on an existing assignment instead of solving from scratch)
//   wgrap_cli jra       --dataset d.csv --paper 0 --dp 3 [--topk 5]
//                       [--algo bba] [--topics dense|sparse]
//                       [--bba-bounding on|off] [--bba-gain-branching on|off]
//   wgrap_cli evaluate  --dataset d.csv --assignment a.csv --dp 3 [--dr N]
//   wgrap_cli casestudy --dataset d.csv --assignment a.csv --paper 0 --dp 3
//   wgrap_cli update    --dataset d.csv --assignment a.csv --mutations m.txt
//                       --dp 3 [--dr N] [--scoring c|cR|cP|cD]
//                       [--topics dense|sparse] [--refine sra|ls|none]
//                       [--seed S] [--budget secs] [--threads N]
//                       [--mode patch|rebuild] [--cold] [--out a2.csv]
//     (applies a mutation script — see core/update.h ParseMutationScript
//      for the line grammar — to the instance and incrementally re-solves
//      from the surviving assignment; --cold also runs a cold solve for
//      comparison, --mode rebuild cross-checks the patch path by
//      rebuilding the instance from scratch after the mutations)
//   wgrap_cli serve     [--port P] [--jobs W] [--results M]
//                       [--cache-threads N] [--max-queue D] [--max-conns C]
//                       [--read-timeout S] [--max-payload BYTES]
//     (the WGRAP service: named sessions, async solver jobs, incremental
//      mutations — the line protocol of service/protocol.h on stdin/stdout,
//      or on 127.0.0.1:P with --port; --port 0 picks an ephemeral port,
//      printed to stderr. Solve/evaluate/update responses are rendered by
//      the same service/reports.h formatters the subcommands below print
//      with, so they are byte-identical to one-shot CLI output — CI diffs
//      them. Degradation knobs: --max-queue sheds submits past D queued
//      jobs with err Unavailable, --max-conns caps concurrent TCP
//      connections, --read-timeout drops connections idle past S seconds,
//      --max-payload rejects larger `<<N` frames.)
//   wgrap_cli watch     --port P --job N [--retries R]
//     (line-protocol client: connects to a `serve --port P` process,
//      streams job N's progress frames to stdout as they arrive, then the
//      final report — the interactive face of the protocol's `watch`.
//      Transient failures — connect refused, connection dropped mid-stream
//      — are retried up to R times (default 5) with jittered exponential
//      backoff; on reconnect the server replays the job's frames from 0
//      and already-printed ones are skipped, so the output stream stays
//      identical to an uninterrupted watch. err replies are not retried.)
//
// Note: `--topics` means the scoring-kernel selector (dense or CSR-sparse,
// bit-identical output) on solve/jra/update, but the topic *count* T on
// generate.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <thread>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/api.h"
#include "service/protocol.h"
#include "service/reports.h"
#include "service/tcp.h"
#include "simd/dispatch.h"
#include "wgrap.h"

namespace {

using namespace wgrap;

// --- tiny flag parser ------------------------------------------------------

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      arg = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  int GetInt(const std::string& name, int fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }

  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  uint64_t GetUint64(const std::string& name, uint64_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (errno != 0 || end == it->second.c_str() || *end != '\0') {
      std::fprintf(stderr, "--%s: invalid unsigned integer '%s'\n",
                   name.c_str(), it->second.c_str());
      std::exit(2);
    }
    return v;
  }

  std::string Require(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", name.c_str());
      std::exit(2);
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

[[noreturn]] void Die(const Status& status, const char* what) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

core::ScoringFunction ParseScoring(const std::string& name) {
  if (name == "c") return core::ScoringFunction::kWeightedCoverage;
  if (name == "cR") return core::ScoringFunction::kReviewerCoverage;
  if (name == "cP") return core::ScoringFunction::kPaperCoverage;
  if (name == "cD") return core::ScoringFunction::kDotProduct;
  std::fprintf(stderr, "unknown scoring '%s' (use c, cR, cP, cD)\n",
               name.c_str());
  std::exit(2);
}

data::RapDataset LoadDatasetOrDie(const std::string& path) {
  auto dataset = data::LoadDataset(path);
  if (!dataset.ok()) Die(dataset.status(), "load dataset");
  return std::move(dataset).value();
}

// Validates `--topics` and returns true when the sparse kernels were
// requested (the caller builds the instance's CSR views).
bool ParseTopicsMode(const Flags& flags) {
  const std::string topics = flags.GetString("topics", "dense");
  if (topics == "sparse") return true;
  if (topics != "dense") {
    std::fprintf(stderr, "unknown --topics '%s' (use dense or sparse)\n",
                 topics.c_str());
    std::exit(2);
  }
  return false;
}

core::Instance MakeInstanceOrDie(const data::RapDataset& dataset,
                                 const Flags& flags) {
  core::InstanceParams params;
  params.group_size = flags.GetInt("dp", 3);
  params.reviewer_workload = flags.GetInt("dr", 0);
  params.scoring = ParseScoring(flags.GetString("scoring", "c"));
  params.sparse_topics = ParseTopicsMode(flags);
  auto instance = core::Instance::FromDataset(dataset, params);
  if (!instance.ok()) Die(instance.status(), "build instance");
  return std::move(instance).value();
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  file << content;
}

core::Assignment LoadAssignmentOrDie(const core::Instance& instance,
                                     const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::string csv((std::istreambuf_iterator<char>(file)),
                  std::istreambuf_iterator<char>());
  auto pairs = data::AssignmentPairsFromCsv(csv);
  if (!pairs.ok()) Die(pairs.status(), "parse assignment");
  core::Assignment assignment(&instance);
  for (const auto& [p, r] : *pairs) {
    Status st = assignment.AddUnchecked(p, r);
    if (!st.ok()) Die(st, "apply assignment pair");
  }
  return assignment;
}

// --- subcommands -----------------------------------------------------------

int CmdGenerate(const Flags& flags) {
  data::SyntheticDblpConfig config;
  config.seed = flags.GetInt("seed", 42);
  config.num_topics = flags.GetInt("topics", 30);
  // Strict parse: a malformed --density must fail loudly, not silently
  // fall back to the fully dense default and skew a sparsity sweep.
  const std::string density_flag = flags.GetString("density", "");
  if (!density_flag.empty()) {
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(density_flag.c_str(), &end);
    if (errno != 0 || end == density_flag.c_str() || *end != '\0') {
      std::fprintf(stderr, "--density: invalid number '%s'\n",
                   density_flag.c_str());
      return 2;
    }
    config.topic_density = v;
  }
  Result<data::RapDataset> dataset = Status::Internal("unset");
  if (flags.GetInt("pool", 0) > 0) {
    dataset = data::GenerateReviewerPool(flags.GetInt("pool", 0),
                                         flags.GetInt("papers", 0), config);
  } else {
    const std::string area_name = flags.Require("area");
    data::Area area;
    if (area_name == "DM") {
      area = data::Area::kDataMining;
    } else if (area_name == "DB") {
      area = data::Area::kDatabases;
    } else if (area_name == "T") {
      area = data::Area::kTheory;
    } else {
      std::fprintf(stderr, "unknown area '%s' (use DM, DB, T)\n",
                   area_name.c_str());
      return 2;
    }
    dataset = data::GenerateConferenceDataset(area, flags.GetInt("year", 2008),
                                              config);
  }
  if (!dataset.ok()) Die(dataset.status(), "generate");
  const std::string out = flags.Require("out");
  Status st = data::SaveDataset(*dataset, out);
  if (!st.ok()) Die(st, "save");
  std::printf("wrote %d reviewers, %d papers, T=%d to %s\n",
              dataset->num_reviewers(), dataset->num_papers(),
              dataset->num_topics, out.c_str());
  // Achieved sparsity, so density sweeps can see what materialized
  // (salient-topic profiles are sparse even without --density).
  const data::TopicDensityReport density = data::MeasureTopicDensity(*dataset);
  std::printf("avg nnz/row: reviewers %.1f/%d, papers %.1f/%d\n",
              density.reviewer_avg_nnz, density.num_topics,
              density.paper_avg_nnz, density.num_topics);
  return 0;
}

int CmdSolvers(const Flags& flags) {
  const bool verbose = !flags.GetString("verbose", "").empty();
  std::printf("%s",
              service::SolversReport(core::SolverRegistry::Default(), verbose)
                  .c_str());
  return 0;
}

int CmdSolve(const Flags& flags) {
  const data::RapDataset dataset = LoadDatasetOrDie(flags.Require("dataset"));
  core::Instance instance = MakeInstanceOrDie(dataset, flags);
  // With --refine the sensible default is the paper's refiner, not the
  // full sdga-sra pipeline (which has no refine hook).
  const std::string refine_path = flags.GetString("refine", "");
  const std::string algo =
      flags.GetString("algo", refine_path.empty() ? "sdga-sra" : "sra");

  // No default budget: constructive solvers (greedy, brgg, sm, sdga) abort
  // with ResourceExhausted when a limit expires, so an implicit cap would
  // turn slow-but-finishing runs into failures. sdga-sra/sdga-ls terminate
  // on their own convergence criteria; --budget caps their refinement.
  core::SolverRunOptions options;
  options.time_limit_seconds = flags.GetDouble("budget", 0.0);
  options.seed = flags.GetUint64("seed", 20150531);
  // Solver-specific knobs ride in the registry's extra map; results are
  // bit-identical for any --threads value at a fixed --seed.
  for (const auto& [flag, key] :
       {std::pair<const char*, const char*>{"threads", "threads"},
        {"lap", "lap"},
        {"lap-topk", "lap_topk"},
        {"lap-epsilon", "lap_epsilon"},
        {"sra-omega", "sra_omega"},
        {"sra-lambda", "sra_lambda"},
        {"topics", "topics"},
        {"gains", "gains"}}) {
    const std::string value = flags.GetString(flag, "");
    if (!value.empty()) options.extra[key] = value;
  }
  const auto& registry = core::SolverRegistry::Default();
  Result<core::Assignment> assignment = Status::Internal("unset");
  const std::string trace_path = flags.GetString("trace", "");
  obs::Tracer tracer;
  {
    // Attach only for the solve itself, so the span tree is exactly the
    // solver's — never report rendering or file IO.
    std::optional<obs::ScopedTracerAttach> attach;
    if (!trace_path.empty()) attach.emplace(&tracer);
    if (!refine_path.empty()) {
      // Refine-from-initial: load the assignment and dispatch through the
      // registry's refine hook (the refiner validates completeness).
      core::Assignment initial = LoadAssignmentOrDie(instance, refine_path);
      assignment = registry.RefineCra(algo, instance, initial, options);
    } else {
      assignment = registry.SolveCra(algo, instance, options);
    }
  }
  if (!assignment.ok()) Die(assignment.status(), "solve");
  if (!trace_path.empty()) {
    WriteFileOrDie(trace_path, obs::TraceToChromeJson(tracer));
    std::fprintf(stderr, "wrote %zu trace spans to %s\n",
                 tracer.spans().size(), trace_path.c_str());
  }
  if (!flags.GetString("verbose", "").empty()) {
    // Telemetry stays off stdout so the report is byte-identical to an
    // uninstrumented run; stderr is where operators look anyway. The
    // kernel backend makes bench/telemetry records attributable to the
    // hardware they ran on (also exported as the wgrap_simd_backend_avx2
    // gauge).
    std::fprintf(stderr, "kernel backend: %s\n", simd::ActiveBackendName());
    if (!obs::Enabled()) {
      std::fprintf(stderr, "telemetry disabled (WGRAP_OBS=0)\n");
    } else {
      obs::Registry& metrics = obs::Registry::Global();
      for (const char* name :
           {"wgrap_lap_auction_fallbacks_total",
            "wgrap_lap_auction_phases_total", "wgrap_lap_auction_rounds_total",
            "wgrap_lap_auction_bids_total", "wgrap_lap_auction_widen_total",
            "wgrap_lap_auction_reverse_sweeps_total",
            "wgrap_gain_cache_patched_cells_total",
            "wgrap_gain_cache_rebuilt_cells_total",
            "wgrap_gain_cache_full_builds_total", "wgrap_sra_rounds_total"}) {
        obs::Counter* counter = metrics.GetCounter(name);
        if (counter != nullptr) {
          std::fprintf(stderr, "telemetry: %s %lld\n", name,
                       static_cast<long long>(counter->Value()));
        }
      }
    }
  }
  const core::SolverDescriptor* descriptor = registry.Find(algo);
  if (descriptor != nullptr && !descriptor->produces_feasible) {
    std::fprintf(stderr,
                 "warning: '%s' is a diagnostic baseline whose output "
                 "violates the group-size/workload constraints; scores below "
                 "are not comparable to feasible solvers\n",
                 algo.c_str());
  }

  const std::string out = flags.GetString("out", "");
  if (!out.empty()) WriteFileOrDie(out, service::AssignmentCsv(*assignment));
  std::printf("%s",
              service::SolveReportLine(algo, instance, *assignment, out)
                  .c_str());
  return 0;
}

int CmdJra(const Flags& flags) {
  const data::RapDataset dataset = LoadDatasetOrDie(flags.Require("dataset"));
  core::InstanceParams params;  // JRA ignores workloads (δr := R)
  params.group_size = flags.GetInt("dp", 3);
  params.reviewer_workload = dataset.num_reviewers();
  params.scoring = ParseScoring(flags.GetString("scoring", "c"));
  params.sparse_topics = ParseTopicsMode(flags);
  auto instance = core::Instance::FromDataset(dataset, params);
  if (!instance.ok()) Die(instance.status(), "build instance");
  const int paper = flags.GetInt("paper", 0);
  const int topk = flags.GetInt("topk", 1);
  const std::string algo = flags.GetString("algo", "bba");
  core::SolverRunOptions options;
  // BBA ablation switches and the kernel selector ride the extra map, like
  // the CRA knobs in CmdSolve; the registry validates the values.
  for (const auto& [flag, key] :
       {std::pair<const char*, const char*>{"topics", "topics"},
        {"bba-bounding", "bba_bounding"},
        {"bba-gain-branching", "bba_gain_branching"}}) {
    const std::string value = flags.GetString(flag, "");
    if (!value.empty()) options.extra[key] = value;
  }
  Result<std::vector<core::JraResult>> results = Status::Internal("unset");
  if (topk > 1) {
    // Top-k enumeration dispatches through the registry's top-k hook like
    // every other solve; the registry diagnoses solvers without one.
    results = core::SolverRegistry::Default().SolveJraTopK(
        algo, *instance, paper, topk, options);
  } else {
    auto one =
        core::SolverRegistry::Default().SolveJra(algo, *instance, paper,
                                                 options);
    if (one.ok()) {
      results = std::vector<core::JraResult>{*std::move(one)};
    } else {
      results = one.status();
    }
  }
  if (!results.ok()) Die(results.status(), algo.c_str());
  std::printf("paper %d: \"%s\"\n", paper,
              dataset.papers[paper].title.c_str());
  for (size_t i = 0; i < results->size(); ++i) {
    std::printf("#%zu  score %.4f:", i + 1, (*results)[i].score);
    for (int r : (*results)[i].group) {
      std::printf("  %s", dataset.reviewers[r].name.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  const data::RapDataset dataset = LoadDatasetOrDie(flags.Require("dataset"));
  core::Instance instance = MakeInstanceOrDie(dataset, flags);
  core::Assignment assignment =
      LoadAssignmentOrDie(instance, flags.Require("assignment"));
  std::printf("%s", service::EvaluationReport(instance, assignment).c_str());
  return 0;
}

int CmdUpdate(const Flags& flags) {
  const data::RapDataset dataset = LoadDatasetOrDie(flags.Require("dataset"));
  core::Instance instance = MakeInstanceOrDie(dataset, flags);
  core::Assignment assignment =
      LoadAssignmentOrDie(instance, flags.Require("assignment"));

  const std::string mutations_path = flags.Require("mutations");
  std::ifstream mutations_file(mutations_path);
  if (!mutations_file) {
    std::fprintf(stderr, "cannot open %s\n", mutations_path.c_str());
    return 1;
  }
  std::string script((std::istreambuf_iterator<char>(mutations_file)),
                     std::istreambuf_iterator<char>());
  auto updates = core::ParseMutationScript(script);
  if (!updates.ok()) Die(updates.status(), "parse mutations");

  core::InstanceParams params;
  params.group_size = flags.GetInt("dp", 3);
  params.reviewer_workload = flags.GetInt("dr", 0);
  params.scoring = ParseScoring(flags.GetString("scoring", "c"));
  core::InstanceUpdater updater(&instance, params);
  updater.TrackAssignment(&assignment);
  auto report = updater.ApplyAll(*updates);
  if (!report.ok()) Die(report.status(), "apply mutations");
  std::printf("%s", service::MutationReport(*report, instance).c_str());

  core::SolverRunOptions options;
  options.time_limit_seconds = flags.GetDouble("budget", 0.0);
  options.seed = flags.GetUint64("seed", 20150531);
  for (const auto& [flag, key] :
       {std::pair<const char*, const char*>{"threads", "threads"},
        {"lap", "lap"},
        {"gains", "gains"},
        {"sra-omega", "sra_omega"},
        {"sra-lambda", "sra_lambda"},
        {"refine", "update_refine"}}) {
    const std::string value = flags.GetString(flag, "");
    if (!value.empty()) options.extra[key] = value;
  }

  // --mode rebuild cross-checks the patch path: export the patched
  // instance back to a dataset, rebuild it from scratch, replay COIs and
  // the surviving groups, and resolve on that. The update subsystem's
  // contract (core/update.h) makes the two modes' output bitwise equal —
  // CI diffs them.
  const std::string mode = flags.GetString("mode", "patch");
  if (mode != "patch" && mode != "rebuild") {
    std::fprintf(stderr, "unknown --mode '%s' (use patch or rebuild)\n",
                 mode.c_str());
    return 2;
  }
  core::Instance* live = &instance;
  core::Assignment* survivors = &assignment;
  std::optional<core::Instance> rebuilt;
  std::optional<core::Assignment> rebuilt_assignment;
  if (mode == "rebuild") {
    core::InstanceParams rebuild_params = params;
    rebuild_params.sparse_topics = ParseTopicsMode(flags);
    auto fresh = core::Instance::FromDataset(core::SnapshotDataset(instance),
                                             rebuild_params);
    if (!fresh.ok()) Die(fresh.status(), "rebuild instance");
    rebuilt = std::move(fresh).value();
    for (int p = 0; p < instance.num_papers(); ++p) {
      for (int r = 0; r < instance.num_reviewers(); ++r) {
        if (instance.IsConflict(r, p)) rebuilt->AddConflict(r, p);
      }
    }
    rebuilt_assignment.emplace(&*rebuilt);
    for (int p = 0; p < instance.num_papers(); ++p) {
      for (int r : assignment.GroupFor(p)) {
        Status st = rebuilt_assignment->AddUnchecked(p, r);
        if (!st.ok()) Die(st, "replay surviving pair");
      }
    }
    live = &*rebuilt;
    survivors = &*rebuilt_assignment;
  }

  auto resolve = core::IncrementalResolve(*live, survivors, options);
  if (!resolve.ok()) Die(resolve.status(), "incremental resolve");
  std::printf("%s", service::ResolveReport(*resolve, *survivors).c_str());
  // Timing goes to stderr so stdout stays byte-stable for the CI diff of
  // patch vs rebuild mode.
  std::fprintf(stderr, "incremental resolve: %.3fs\n", resolve->seconds);

  if (!flags.GetString("cold", "").empty()) {
    Stopwatch cold_watch;
    auto cold = core::SolverRegistry::Default().SolveCra("sdga-sra", *live,
                                                         options);
    if (!cold.ok()) Die(cold.status(), "cold solve");
    const double cold_seconds = cold_watch.ElapsedSeconds();
    std::printf("cold: score %.6f\n", cold->TotalScore());
    std::fprintf(stderr, "cold solve: %.3fs (%.1fx the incremental resolve)\n",
                 cold_seconds,
                 resolve->seconds > 0.0 ? cold_seconds / resolve->seconds
                                        : 0.0);
  }

  const std::string out = flags.GetString("out", "");
  if (!out.empty()) WriteFileOrDie(out, service::AssignmentCsv(*survivors));
  return 0;
}

int CmdServe(const Flags& flags) {
  // Resolve the kernel backend now so the wgrap_simd_backend_avx2 gauge
  // is on the `stats` page before the first solve touches a kernel.
  simd::ActiveBackend();
  service::ServiceOptions options;
  options.job_workers = flags.GetInt("jobs", 2);
  options.max_results = flags.GetInt("results", 64);
  options.cache_threads = flags.GetInt("cache-threads", 1);
  options.max_queue_depth = flags.GetInt("max-queue", 0);
  service::ServeOptions serve_options;
  serve_options.max_payload_bytes = static_cast<int64_t>(flags.GetUint64(
      "max-payload",
      static_cast<uint64_t>(serve_options.max_payload_bytes)));
  service::ServiceApi api(options);
  const int port = flags.GetInt("port", -1);
  if (port >= 0) {
    service::TcpServer::Options tcp_options;
    tcp_options.max_connections = flags.GetInt("max-conns", 64);
    tcp_options.read_timeout_seconds = flags.GetInt("read-timeout", 0);
    tcp_options.serve = serve_options;
    service::TcpServer server(&api, tcp_options);
    Status started = server.Start(port);
    if (!started.ok()) Die(started, "serve");
    std::fprintf(stderr, "serving on 127.0.0.1:%d (EOF on stdin stops)\n",
                 server.port());
    std::string line;
    while (std::getline(std::cin, line)) {
    }
    api.jobs().Drain();
    server.Stop();
    return 0;
  }
  // stdio mode: the protocol on stdin/stdout, one session per process —
  // what the CI smoke and `printf ... | wgrap_cli serve` scripting use.
  service::ServeStream(std::cin, std::cout, api, serve_options);
  api.jobs().Drain();
  return 0;
}

// --- watch: a minimal line-protocol TCP client ------------------------------

bool ReadExactly(int fd, char* buffer, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buffer + got, n - got, 0);
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

// One response header line ("ok <N>" / "err <Code> <N>"), byte at a time —
// throughput is irrelevant here and this needs no buffering state.
bool ReadHeaderLine(int fd, std::string* line) {
  line->clear();
  char c = 0;
  while (ReadExactly(fd, &c, 1)) {
    if (c == '\n') return true;
    *line += c;
  }
  return false;
}

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int CmdWatch(const Flags& flags) {
  const int port = flags.GetInt("port", 0);
  if (port <= 0) {
    std::fprintf(stderr, "watch requires --port (a `serve --port` process)\n");
    return 2;
  }
  const int job = std::atoi(flags.Require("job").c_str());
  const int max_retries = flags.GetInt("retries", 5);

  // Jittered exponential backoff between reconnect attempts: jitter keeps
  // a fleet of watchers from re-hitting a recovering server in lockstep.
  std::mt19937 rng(static_cast<unsigned>(
      std::chrono::steady_clock::now().time_since_epoch().count() ^
      static_cast<long long>(::getpid())));

  // Progress frames already printed: `watch` replays the job's frames
  // from index 0 on every (re)connect, so after a mid-stream reconnect we
  // skip this many and the output stays identical to an unbroken watch.
  std::size_t printed = 0;
  int attempt = 0;
  for (;;) {
    bool transient = false;
    const int fd = ConnectLoopback(port);
    if (fd < 0) {
      transient = true;
    } else {
      const std::string command = "watch " + std::to_string(job) + "\n";
      if (::send(fd, command.data(), command.size(), MSG_NOSIGNAL) !=
          static_cast<ssize_t>(command.size())) {
        transient = true;
        ::close(fd);
      } else {
        // Progress frames stream as individual ok replies whose payload
        // starts with "progress "; the first reply that doesn't is the
        // final result (or an err frame for a failed/cancelled/unknown
        // job — a server *answer*, never retried).
        std::size_t seen = 0;
        for (;;) {
          std::string header;
          if (!ReadHeaderLine(fd, &header)) {
            transient = true;  // connection dropped mid-reply
            break;
          }
          const bool ok = header.rfind("ok ", 0) == 0;
          const std::size_t size_at = header.rfind(' ');
          if (size_at == std::string::npos) {
            std::fprintf(stderr, "watch: malformed reply header '%s'\n",
                         header.c_str());
            ::close(fd);
            return 1;
          }
          const long long size =
              std::atoll(header.c_str() + size_at + 1);
          std::string payload(static_cast<std::size_t>(size < 0 ? 0 : size),
                              '\0');
          if (size > 0 && !ReadExactly(fd, payload.data(), payload.size())) {
            transient = true;
            break;
          }
          if (ok && payload.rfind("progress ", 0) == 0) {
            if (++seen > printed) {
              std::fputs(payload.c_str(), stdout);
              std::fflush(stdout);
              printed = seen;
            }
            continue;
          }
          ::close(fd);
          if (!ok) {
            std::fprintf(stderr, "watch: %s: %s\n", header.c_str(),
                         payload.c_str());
            return 1;
          }
          std::fputs(payload.c_str(), stdout);
          return 0;
        }
        ::close(fd);
      }
    }
    if (!transient || attempt >= max_retries) {
      std::fprintf(stderr, "watch: giving up after %d attempt%s\n",
                   attempt + 1, attempt == 0 ? "" : "s");
      return 1;
    }
    const int base_ms = 100 * (1 << (attempt < 6 ? attempt : 6));
    std::uniform_int_distribution<int> jitter(0, base_ms / 2);
    const int delay_ms = base_ms + jitter(rng);
    std::fprintf(stderr, "watch: connection lost; retry %d/%d in %d ms\n",
                 attempt + 1, max_retries, delay_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    ++attempt;
  }
}

int CmdCaseStudy(const Flags& flags) {
  const data::RapDataset dataset = LoadDatasetOrDie(flags.Require("dataset"));
  core::Instance instance = MakeInstanceOrDie(dataset, flags);
  core::Assignment assignment =
      LoadAssignmentOrDie(instance, flags.Require("assignment"));
  const int paper = flags.GetInt("paper", 0);
  const auto report = core::BuildCaseStudy(instance, assignment, dataset,
                                           paper, flags.GetInt("topics", 5));
  std::printf("%s", core::FormatCaseStudy(report, "assignment").c_str());
  return 0;
}

void Usage() {
  std::fputs(
      "usage: wgrap_cli "
      "<solvers|generate|solve|jra|evaluate|casestudy|update|serve|watch> "
      "[flags]\n"
      "run `wgrap_cli solvers` for the algorithm menu and see the header of "
      "tools/wgrap_cli.cc for the flag list\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  Flags flags(argc, argv, 2);
  if (command == "solvers") return CmdSolvers(flags);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "solve") return CmdSolve(flags);
  if (command == "jra") return CmdJra(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "casestudy") return CmdCaseStudy(flags);
  if (command == "update") return CmdUpdate(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "watch") return CmdWatch(flags);
  Usage();
  return 2;
}
